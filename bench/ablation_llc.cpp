/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. LLC frame size (flits per frame): padding overhead vs framing
 *     efficiency under a read-request workload.
 *  2. Rx credit window: credit starvation when the ingress queue is
 *     undersized.
 *  3. Frame error rate: replay cost (go-back-N) on loaded links.
 *  4. Interleave ratio: sweeping the local:remote page mix between
 *     pure-disaggregated and pure-local STREAM bandwidth.
 *  5. Credit depth x frame size under cut-through framing: the
 *     trace.attr latency table (llcReq/c1/llcResp/total p50+p99) per
 *     sweep point, used to pick the FlowParams defaults that hold
 *     the loaded remote p99 under 2 us.
 */

#include <cstdio>

#include "apps/stream.hh"
#include "common.hh"
#include "mem/dram.hh"
#include "sim/trace/export.hh"

using namespace tf;

namespace {

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;

struct LoadedRun
{
    double gibs = 0;
    std::uint64_t padFlits = 0;
    std::uint64_t creditStalls = 0;
    std::uint64_t replays = 0;
    // Stage attribution (filled when the run traces spans), in ns.
    double reqP99 = 0;
    double c1P99 = 0;
    double respP99 = 0;
    double totalP50 = 0;
    double totalP99 = 0;
};

LoadedRun
runLoaded(flow::FlowParams params, int total = 25000,
          bool traced = false)
{
    sim::EventQueue eq;
    if (traced)
        eq.trace().setFull(true);
    sim::Rng rng{3};
    mem::BackingStore store;
    mem::Dram dram("donorDram", eq, mem::DramParams{}, &store);
    ocapi::PasidRegistry pasids;
    flow::Datapath dp("dp", eq, params,
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasids, dram, rng, kSection);
    ocapi::Pasid pasid = pasids.allocate();
    pasids.registerRegion(pasid, kDonorBase, kWindowSize);
    dp.stealing().setPasid(pasid);
    dp.attach(0, kDonorBase, 1, {0});

    int issued = 0;
    std::function<void()> one = [&]() {
        if (issued >= total)
            return;
        auto txn = mem::makeTxn(
            mem::TxnType::ReadReq,
            kWindowBase +
                (static_cast<mem::Addr>(issued) * 128) % kSection);
        ++issued;
        txn->onComplete = [&](mem::MemTxn &) { one(); };
        dp.issue(txn);
    };
    for (int i = 0; i < 192; ++i)
        one();
    eq.run();

    LoadedRun r;
    r.gibs = static_cast<double>(total) * 128 /
             (1024.0 * 1024 * 1024) / sim::toSec(eq.now());
    r.padFlits = dp.channel(0).txA().padFlitsSent() +
                 dp.channel(0).txB().padFlitsSent();
    r.creditStalls = dp.channel(0).txA().creditStalls() +
                     dp.channel(0).txB().creditStalls();
    r.replays = dp.channel(0).txA().replayedFrames() +
                dp.channel(0).txB().replayedFrames();
    if (traced) {
        sim::trace::TraceCollector collector;
        collector.addBuffer(eq.trace(), "rig");
        sim::trace::Attribution attr = collector.attribution();
        auto p99 = [&](sim::trace::Stage s) {
            return attr.stageNs[static_cast<std::size_t>(s)].quantile(
                0.99);
        };
        r.reqP99 = p99(sim::trace::Stage::LlcReq);
        r.c1P99 = p99(sim::trace::Stage::C1);
        r.respP99 = p99(sim::trace::Stage::LlcResp);
        r.totalP50 = attr.totalNs.quantile(0.50);
        r.totalP99 = attr.totalNs.quantile(0.99);
    }
    return r;
}

} // namespace

int
main()
{
    std::printf("=== Ablation 1: LLC frame size (read stream) ===\n");
    std::printf("%-12s %10s %12s\n", "frameFlits", "GiB/s",
                "padFlits");
    for (std::uint32_t flits : {8u, 16u, 32u, 64u}) {
        flow::FlowParams p;
        p.frameFlits = flits;
        auto r = runLoaded(p);
        std::printf("%-12u %10.2f %12llu\n", flits, r.gibs,
                    (unsigned long long)r.padFlits);
    }

    std::printf("\n=== Ablation 2: Rx credit window ===\n");
    std::printf("%-12s %10s %14s\n", "credits", "GiB/s",
                "creditStalls");
    for (std::uint32_t credits : {2u, 4u, 8u, 16u, 64u}) {
        flow::FlowParams p;
        p.rxQueueFrames = credits;
        p.replayBufferFrames = std::max(credits * 4, 64u);
        auto r = runLoaded(p);
        std::printf("%-12u %10.2f %14llu\n", credits, r.gibs,
                    (unsigned long long)r.creditStalls);
    }

    std::printf("\n=== Ablation 3: frame error rate (replay) ===\n");
    std::printf("%-12s %10s %10s\n", "errorRate", "GiB/s",
                "replays");
    for (double err : {0.0, 0.001, 0.01, 0.05}) {
        flow::FlowParams p;
        p.frameErrorRate = err;
        p.ackTimeout = sim::microseconds(10);
        auto r = runLoaded(p, 15000);
        std::printf("%-12g %10.2f %10llu\n", err, r.gibs,
                    (unsigned long long)r.replays);
    }

    std::printf("\n=== Ablation 4: page interleave ratio "
                "(STREAM copy, 8 threads) ===\n");
    std::printf("%-20s %10s\n", "local:remote", "GiB/s");
    for (int local_share : {0, 1, 2, 3}) {
        // Build interleave node lists like 0:1 (pure remote),
        // 1:1, 2:1, 3:1 local:remote pages.
        auto bed = bench::makeBed(sys::Setup::SingleDisaggregated,
                                  256ULL * 1024 * 1024,
                                  4ULL * 1024 * 1024);
        auto &tb = *bed.testbed;
        std::vector<os::NodeId> nodes;
        for (int i = 0; i < local_share; ++i)
            nodes.push_back(tb.serverA().localNode());
        nodes.push_back(tb.serverA().tflowNode());
        apps::StreamParams sp;
        sp.elements = 1024 * 1024;
        sp.threads = 8;
        sp.iterations = 1;
        apps::StreamBenchmark stream(tb, sp);
        // Override the policy by rebuilding through a custom space:
        // the benchmark object uses the testbed policy, so emulate
        // the ratio with the interleave node list instead.
        (void)stream;
        sim::EventQueue &eq = *bed.eq;
        os::AddressSpace space(
            tb.serverA().mm(), tb.serverA().localNode(),
            os::AllocPolicy::interleave(nodes));
        sys::MemoryPath path(tb.serverA());
        mem::Addr a = space.mmap(sp.elements * 8);
        mem::Addr c = space.mmap(sp.elements * 8);
        std::uint64_t lines = sp.elements * 8 / 128;
        std::uint64_t per_thread = lines / 8;
        sim::Tick start = eq.now();
        auto next = std::make_shared<
            std::function<void(std::uint64_t, std::uint64_t)>>();
        *next = [&, next](std::uint64_t cur, std::uint64_t end) {
            if (cur >= end)
                return;
            std::uint64_t chunk = std::min<std::uint64_t>(64, end - cur);
            std::vector<sys::Access> acc;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                acc.push_back(sys::Access{a + (cur + i) * 128, false});
                acc.push_back(sys::Access{c + (cur + i) * 128, true});
            }
            path.burstMixed(space, std::move(acc), 24,
                            [next, cur, chunk, end]() {
                                (*next)(cur + chunk, end);
                            },
                            true);
        };
        for (int t = 0; t < 8; ++t)
            (*next)(static_cast<std::uint64_t>(t) * per_thread,
                    static_cast<std::uint64_t>(t + 1) * per_thread);
        eq.run();
        double gib = static_cast<double>(sp.elements) * 16 /
                     (1024.0 * 1024 * 1024) /
                     sim::toSec(eq.now() - start);
        std::printf("%d:1 %16.2f\n", local_share, gib);
    }

    std::printf("\n=== Ablation 5: credit depth x frame size "
                "(cut-through, 192-deep read stream) ===\n");
    std::printf("%-8s %-8s %8s %9s %9s %9s %9s %9s\n", "credits",
                "flits", "GiB/s", "reqP99", "c1P99", "respP99",
                "totP50", "totP99");
    for (std::uint32_t credits : {16u, 32u, 64u, 128u}) {
        for (std::uint32_t flits : {8u, 16u, 32u, 64u, 128u}) {
            flow::FlowParams p;
            p.cutThrough = true;
            p.rxQueueFrames = credits;
            p.replayBufferFrames = std::max(credits * 4, 64u);
            p.frameFlits = flits;
            auto r = runLoaded(p, 25000, true);
            std::printf(
                "%-8u %-8u %8.2f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                credits, flits, r.gibs, r.reqP99, r.c1P99, r.respP99,
                r.totalP50, r.totalP99);
        }
    }
    return 0;
}
