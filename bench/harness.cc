#include "harness.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "topo/builder.hh"
#include "topo_scenario.hh"

#ifndef TF_GIT_SHA
#define TF_GIT_SHA "unknown"
#endif

namespace tf::bench {

namespace {

std::string
gitSha()
{
    // The environment wins over the compile-time stamp so CI can
    // inject the exact checkout SHA without a rebuild.
    if (const char *env = std::getenv("TF_GIT_SHA"))
        return env;
    return TF_GIT_SHA;
}

} // namespace

ScenarioContext::ScenarioContext(std::string scenario,
                                 std::uint64_t seed, bool smoke)
    : _scenario(std::move(scenario)), _seed(seed), _smoke(smoke)
{
}

void
ScenarioContext::metric(const std::string &name, double value,
                        const std::string &unit)
{
    _metrics.push_back(Metric{name, value, unit});
}

void
ScenarioContext::latencyUs(const std::string &prefix,
                           const sim::SampleStat &s)
{
    metric(prefix + "MeanUs", s.mean(), "us");
    metric(prefix + "P50Us", s.quantile(0.50), "us");
    metric(prefix + "P95Us", s.quantile(0.95), "us");
    metric(prefix + "P99Us", s.quantile(0.99), "us");
}

void
ScenarioContext::addRun(const sim::EventQueue &eq)
{
    _simTicks += eq.now();
    _events += eq.executed();
}

void
ScenarioContext::collectTrace(const sim::EventQueue &eq,
                              std::string node)
{
    _collector.addBuffer(eq.trace(), std::move(node));
}

void
ScenarioContext::appendTraceMetrics()
{
    if (_collector.empty())
        return;
    sim::trace::Attribution attr = _collector.attribution();
    auto emit = [this](const std::string &prefix,
                       const sim::QuantileSketch &q) {
        if (q.count() == 0)
            return;
        metric(prefix + ".count", static_cast<double>(q.count()),
               "spans");
        metric(prefix + ".p50Ns", q.quantile(0.50), "ns");
        metric(prefix + ".p95Ns", q.quantile(0.95), "ns");
        metric(prefix + ".p99Ns", q.quantile(0.99), "ns");
    };
    for (int s = 0; s < sim::trace::kStageCount; ++s)
        emit(std::string("trace.attr.") +
                 sim::trace::stageName(
                     static_cast<sim::trace::Stage>(s)),
             attr.stageNs[static_cast<std::size_t>(s)]);
    emit("trace.attr.total", attr.totalNs);
}

bool
ScenarioContext::writeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    _collector.setTimeline(_timeline.empty() ? nullptr : &_timeline);
    _collector.writeJson(out);
    return static_cast<bool>(out);
}

void
ScenarioContext::commit(ScenarioContext &&point)
{
    for (auto &m : point._metrics)
        _metrics.push_back(std::move(m));
    _simTicks += point._simTicks;
    _events += point._events;
    _registry.adopt(std::move(point._registry));
    _timeline.adopt(point._timeline);
    _collector.adopt(std::move(point._collector));
}

void
ScenarioContext::runPoints(
    std::size_t count,
    const std::function<void(ScenarioContext &, std::size_t)> &fn)
{
    auto makePoint = [this] {
        auto sub = std::make_unique<ScenarioContext>(_scenario, _seed,
                                                     _smoke);
        sub->setOutDir(_outDir);
        sub->setTraceEnabled(_traceEnabled);
        sub->setCutThroughOverride(_cutThrough);
        sub->setTimelineWindowUs(_timelineUs);
        return sub;
    };

    unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(_jobs, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            auto sub = makePoint();
            fn(*sub, i);
            commit(std::move(*sub));
        }
        return;
    }

    // Points are embarrassingly parallel: every one builds its own
    // beds against its own queue and registry. Workers pull indices
    // from a shared counter; the main thread commits finished points
    // strictly in index order, so the merged document cannot depend
    // on which thread ran what.
    std::vector<std::unique_ptr<ScenarioContext>> done(count);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                auto sub = makePoint();
                fn(*sub, i);
                done[i] = std::move(sub);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    for (std::size_t i = 0; i < count; ++i) {
        TF_ASSERT(done[i] != nullptr, "point %zu produced no result",
                  i);
        commit(std::move(*done[i]));
    }
}

std::string
ScenarioContext::toJson(double wallMs) const
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "tf-bench-v2");
    w.field("scenario", _scenario);

    w.name("meta");
    w.beginObject();
    w.field("seed", _seed);
    w.field("gitSha", gitSha());
    w.field("config", _smoke ? "smoke" : "full");
    w.field("simTicks", _simTicks);
    w.field("events", _events);
    if (wallMs >= 0)
        w.field("wallMs", wallMs);
    w.endObject();

    w.name("metrics");
    w.beginObject();
    for (const auto &m : _metrics)
        w.field(m.name, m.value);
    w.endObject();

    w.name("units");
    w.beginObject();
    for (const auto &m : _metrics) {
        if (!m.unit.empty())
            w.field(m.name, m.unit);
    }
    w.endObject();

    if (!_timeline.empty()) {
        w.name("timeline");
        _timeline.writeJson(w);
    }

    w.name("stats");
    _registry.writeJson(w);

    w.endObject();
    return os.str();
}

void
ScenarioContext::printSummary(std::FILE *out) const
{
    std::fprintf(out, "%s (%s, seed %llu):\n", _scenario.c_str(),
                 _smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(_seed));
    for (const auto &m : _metrics)
        std::fprintf(out, "  %-32s %14.3f %s\n", m.name.c_str(),
                     m.value, m.unit.c_str());
}

namespace {

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : scenarios())
        if (name == s.name)
            return &s;
    return nullptr;
}

void
listScenarios()
{
    std::printf("%-18s %-6s %s\n", "scenario", "smoke",
                "description");
    for (const auto &s : scenarios())
        std::printf("%-18s %-6s %s\n", s.name,
                    s.inSmokeSet ? "yes" : "no", s.description);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--list] [--smoke] [--scenario NAME]...\n"
                 "          [--topo FILE]... [--validate]\n"
                 "          [--seed N] [--out DIR] [--jobs N]\n"
                 "          [--no-wall] [--trace FILE]\n"
                 "          [--timeline-window US]\n"
                 "          [--cut-through on|off]\n"
                 "  --list           list scenarios and exit\n"
                 "  --smoke          CI-sized runs, smoke subset only\n"
                 "  --scenario NAME  run NAME (repeatable); default:\n"
                 "                   every scenario (or smoke subset)\n"
                 "  --topo FILE      run a declarative topology file\n"
                 "                   (repeatable); the file's \"name\"\n"
                 "                   names the BENCH JSON. With no\n"
                 "                   --scenario flags, only the topo\n"
                 "                   files run\n"
                 "  --validate       parse and build every --topo file,\n"
                 "                   run nothing; exit 2 on the first\n"
                 "                   config error\n"
                 "  --seed N         simulation seed (default 42)\n"
                 "  --out DIR        directory for BENCH_<name>.json\n"
                 "  --jobs N         worker threads (default 1); the\n"
                 "                   result document is identical for\n"
                 "                   any N under the same seed\n"
                 "  --no-wall        omit wall-clock meta so same-seed\n"
                 "                   runs are byte-identical\n"
                 "  --trace FILE     record causal spans: write a\n"
                 "                   Perfetto-loadable trace-event\n"
                 "                   file (byte-identical for any\n"
                 "                   --jobs) and add trace.attr.*\n"
                 "                   latency attribution to the BENCH\n"
                 "                   JSON; with several scenarios the\n"
                 "                   file is FILE.<scenario>\n"
                 "  --timeline-window US\n"
                 "                   force the windowed timeline on\n"
                 "                   with US-microsecond windows: a\n"
                 "                   `timeline` section in the BENCH\n"
                 "                   JSON and Perfetto counter tracks\n"
                 "                   under --trace. Topology files\n"
                 "                   default it on (spec timelineUs)\n"
                 "                   whenever they declare monitors\n"
                 "  --cut-through on|off\n"
                 "                   override the response-framing\n"
                 "                   mode for scenarios that honour\n"
                 "                   it (default: FlowParams default,\n"
                 "                   i.e. cut-through on)\n",
                 argv0);
    return 2;
}

struct Options
{
    bool list = false;
    bool smoke = false;
    bool noWall = false;
    bool validate = false;
    unsigned jobs = 1;
    std::uint64_t seed = 42;
    std::string outDir = ".";
    std::string traceFile;
    double timelineUs = 0.0;
    std::optional<bool> cutThrough;
    std::vector<std::string> names;
    std::vector<std::string> topoFiles;
};

/**
 * Shared emit tail for named scenarios and topology files: trace
 * attribution + optional trace file + BENCH JSON + summary.
 * @p soleOutput names the trace file verbatim instead of suffixing
 * the scenario name.
 */
int
emitResult(ScenarioContext &ctx, const Options &opt, double wallMs,
           bool soleOutput)
{
    // Scenarios with always-on span points (proto_datapath's RTT
    // and single-flow quantile rigs) carry an attribution table on
    // every run, so the trace.attr.*.p99Ns gates work in plain
    // smoke CI; for everything else the collector is empty and
    // this is a no-op unless --trace widened the collection.
    ctx.appendTraceMetrics();
    if (!opt.traceFile.empty()) {
        std::string tracePath =
            soleOutput ? opt.traceFile
                       : opt.traceFile + "." + ctx.scenario();
        if (!ctx.writeTrace(tracePath)) {
            std::fprintf(stderr, "tf_bench: cannot write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("  -> %s (%zu trace node(s))\n",
                    tracePath.c_str(),
                    ctx.collector().nodeCount());
    }

    std::string path =
        opt.outDir + "/BENCH_" + ctx.scenario() + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "tf_bench: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    out << ctx.toJson(opt.noWall ? -1 : wallMs) << "\n";
    ctx.printSummary(stdout);
    std::printf("  -> %s (%.0f ms)\n", path.c_str(), wallMs);
    return 0;
}

ScenarioContext
makeContext(const std::string &name, const Options &opt)
{
    ScenarioContext ctx(name, opt.seed, opt.smoke);
    ctx.setJobs(opt.jobs);
    ctx.setOutDir(opt.outDir);
    ctx.setTraceEnabled(!opt.traceFile.empty());
    ctx.setCutThroughOverride(opt.cutThrough);
    ctx.setTimelineWindowUs(opt.timelineUs);
    return ctx;
}

int
runScenarios(const Options &opt)
{
    if (opt.validate) {
        // Parse + build (no run) every topology file; first config
        // error wins. Exercises the full builder path, so compose
        // failures surface here too, not in CI's smoke run.
        for (const auto &file : opt.topoFiles) {
            try {
                topo::Spec spec = topo::loadSpecFile(file);
                topo::BuildOptions bo;
                bo.seed = opt.seed;
                bo.smoke = true;
                topo::Instance inst(spec, bo);
                std::printf("tf_bench: %s OK (\"%s\": %zu LPs)\n",
                            file.c_str(), spec.name.c_str(),
                            inst.lpCount());
            } catch (const topo::SpecError &e) {
                std::fprintf(stderr, "tf_bench: %s\n", e.what());
                return 2;
            }
        }
        return 0;
    }

    std::vector<const Scenario *> selected;
    if (!opt.names.empty()) {
        for (const auto &n : opt.names) {
            const Scenario *s = findScenario(n);
            if (!s) {
                std::fprintf(stderr,
                             "tf_bench: unknown scenario '%s' "
                             "(try --list)\n",
                             n.c_str());
                return 2;
            }
            selected.push_back(s);
        }
    } else if (opt.topoFiles.empty()) {
        for (const auto &s : scenarios())
            if (!opt.smoke || s.inSmokeSet)
                selected.push_back(&s);
    }

    bool soleOutput = selected.size() + opt.topoFiles.size() == 1;
    for (const Scenario *s : selected) {
        ScenarioContext ctx = makeContext(s->name, opt);
        auto start = std::chrono::steady_clock::now();
        s->run(ctx);
        double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (int rc = emitResult(ctx, opt, wallMs, soleOutput))
            return rc;
    }

    for (const auto &file : opt.topoFiles) {
        try {
            topo::Spec spec = topo::loadSpecFile(file);
            ScenarioContext ctx = makeContext(spec.name, opt);
            auto start = std::chrono::steady_clock::now();
            runTopoScenario(ctx, spec);
            double wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (int rc = emitResult(ctx, opt, wallMs, soleOutput))
                return rc;
        } catch (const topo::SpecError &e) {
            std::fprintf(stderr, "tf_bench: %s\n", e.what());
            return 2;
        }
    }
    return 0;
}

int
parseAndRun(int argc, char **argv,
            const std::string &forcedScenario)
{
    Options opt;
    if (!forcedScenario.empty())
        opt.names.push_back(forcedScenario);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--scenario" && i + 1 < argc) {
            // Wrapper binaries pin their figure; extra --scenario
            // flags widen the run only for the tf_bench driver.
            if (forcedScenario.empty())
                opt.names.push_back(argv[++i]);
            else
                ++i;
        } else if (arg == "--seed" && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--out" && i + 1 < argc) {
            opt.outDir = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            if (opt.jobs == 0)
                opt.jobs = 1;
        } else if (arg == "--topo" && i + 1 < argc) {
            opt.topoFiles.push_back(argv[++i]);
        } else if (arg == "--validate") {
            opt.validate = true;
        } else if (arg == "--no-wall") {
            opt.noWall = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.traceFile = argv[++i];
        } else if (arg == "--timeline-window" && i + 1 < argc) {
            opt.timelineUs = std::strtod(argv[++i], nullptr);
            if (!(opt.timelineUs > 0))
                return usage(argv[0]);
        } else if (arg == "--cut-through" && i + 1 < argc) {
            std::string v = argv[++i];
            if (v == "on")
                opt.cutThrough = true;
            else if (v == "off")
                opt.cutThrough = false;
            else
                return usage(argv[0]);
        } else {
            return usage(argv[0]);
        }
    }
    if (opt.list) {
        listScenarios();
        return 0;
    }
    return runScenarios(opt);
}

} // namespace

int
harnessMain(int argc, char **argv)
{
    return parseAndRun(argc, argv, "");
}

int
scenarioMain(const std::string &name, int argc, char **argv)
{
    return parseAndRun(argc, argv, name);
}

} // namespace tf::bench
