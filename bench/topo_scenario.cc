#include "topo_scenario.hh"

#include "topo/builder.hh"

namespace tf::bench {

void
runTopoScenario(ScenarioContext &ctx, const topo::Spec &spec)
{
    topo::BuildOptions opt;
    opt.seed = ctx.seed();
    opt.jobs = ctx.jobs();
    opt.smoke = ctx.smoke();
    opt.cutThrough = ctx.cutThroughOverride();
    topo::Instance inst(spec, opt);

    if (ctx.traceEnabled()) {
        for (std::size_t i = 0; i < inst.lpCount(); ++i) {
            auto &tb = inst.lp(i).queue().trace();
            tb.setFull(true);
            tb.setIdTag(static_cast<std::uint32_t>(i + 1));
            tb.setName(inst.lp(i).name());
        }
    }

    inst.run();

    std::uint64_t totalOps = 0;
    for (std::size_t i = 0; i < inst.trafficCount(); ++i) {
        const auto &t = inst.traffic(i);
        totalOps += t.completed;
        ctx.metric(t.name + ".ops",
                   static_cast<double>(t.completed), "ops");
        if (t.latUs.count() > 0)
            ctx.latencyUs(t.name + ".lat", t.latUs);
    }
    sim::Tick span = inst.lastCompletion();
    if (span > 0 && totalOps > 0)
        ctx.metric("opsPerSimSec",
                   static_cast<double>(totalOps) / sim::toSec(span),
                   "ops/s");
    ctx.metric("fabric.relayedMsgs",
               static_cast<double>(inst.fabric().relayedMessages()),
               "msgs");
    ctx.metric("fabric.queueMaxNs", inst.fabric().maxQueueDelayNs(),
               "ns");
    if (!spec.faults.empty())
        ctx.metric("faultsFired",
                   static_cast<double>(inst.faultsFired()), "events");

    for (std::size_t i = 0; i < inst.lpCount(); ++i) {
        ctx.addRun(inst.lp(i).queue());
        if (ctx.traceEnabled())
            ctx.collectTrace(inst.lp(i).queue(), inst.lp(i).name());
    }
    inst.registerStats(ctx.registry());
    ctx.registry().freezeAll();
}

} // namespace tf::bench
