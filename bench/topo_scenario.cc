#include "topo_scenario.hh"

#include "topo/builder.hh"

namespace tf::bench {

void
runTopoScenario(ScenarioContext &ctx, const topo::Spec &spec)
{
    topo::BuildOptions opt;
    opt.seed = ctx.seed();
    opt.jobs = ctx.jobs();
    opt.smoke = ctx.smoke();
    opt.cutThrough = ctx.cutThroughOverride();
    opt.timelineUs = ctx.timelineWindowUs();
    opt.dumpDir = ctx.outDir();
    topo::Instance inst(spec, opt);

    if (ctx.traceEnabled()) {
        for (std::size_t i = 0; i < inst.lpCount(); ++i) {
            auto &tb = inst.lp(i).queue().trace();
            tb.setFull(true);
            tb.setIdTag(static_cast<std::uint32_t>(i + 1));
            tb.setName(inst.lp(i).name());
        }
    }

    inst.run();

    std::uint64_t totalOps = 0;
    for (std::size_t i = 0; i < inst.trafficCount(); ++i) {
        const auto &t = inst.traffic(i);
        totalOps += t.completed.value();
        ctx.metric(t.name + ".ops",
                   static_cast<double>(t.completed.value()), "ops");
        if (t.latUs.count() > 0)
            ctx.latencyUs(t.name + ".lat", t.latUs);
    }
    sim::Tick span = inst.lastCompletion();
    if (span > 0 && totalOps > 0)
        ctx.metric("opsPerSimSec",
                   static_cast<double>(totalOps) / sim::toSec(span),
                   "ops/s");
    ctx.metric("fabric.relayedMsgs",
               static_cast<double>(inst.fabric().relayedMessages()),
               "msgs");
    ctx.metric("fabric.queueMaxNs", inst.fabric().maxQueueDelayNs(),
               "ns");
    ctx.metric("fabric.queueHighWater",
               static_cast<double>(inst.fabric().maxQueueHighWater()),
               "msgs");
    if (!spec.faults.empty())
        ctx.metric("faultsFired",
                   static_cast<double>(inst.faultsFired()), "events");

    // Watchdog outcomes double as gateable headline metrics: the
    // baseline pins e.g. slo.victim_quiet.violations at 0 so a
    // regression that perturbs the quiet phase fails CI.
    for (const auto &s : inst.sloResults()) {
        ctx.metric("slo." + s.name + ".violations",
                   static_cast<double>(s.violations), "windows");
        ctx.metric("slo." + s.name + ".worstValue", s.worstValue);
    }
    ctx.timeline().adopt(inst.timeline());

    for (std::size_t i = 0; i < inst.lpCount(); ++i) {
        ctx.addRun(inst.lp(i).queue());
        if (ctx.traceEnabled())
            ctx.collectTrace(inst.lp(i).queue(), inst.lp(i).name());
    }
    inst.registerStats(ctx.registry());
    ctx.registry().freezeAll();
}

} // namespace tf::bench
