/**
 * @file
 * Fig. 7 reproduction: VoltDB throughput for YCSB workloads A and E
 * with 4 and 32 data partitions across every experimental setup.
 *
 * Paper shape (32 partitions, workload A): local fastest; scale-out
 * -5.95%, interleaved -5.62%, single -7.97%, bonding -10.03%.
 * With 4 partitions the ThymesisFlow configurations trail clearly
 * (latency + partition contention). Workload E is saturated by scans
 * for every configuration, so all bars are close.
 */

#include "apps/voltdb.hh"
#include "common.hh"

using namespace tf;

int
main()
{
    std::printf("=== Fig. 7: YCSB A/E throughput (ops/sec) ===\n");
    std::printf("%-8s %-10s", "workload", "partitions");
    for (auto setup : bench::allSetups)
        std::printf(" %22s", sys::setupName(setup));
    std::printf("\n");

    for (auto wl : {apps::YcsbWorkload::A, apps::YcsbWorkload::E}) {
        for (int partitions : {4, 32}) {
            std::printf("%-8s %-10d", apps::ycsbName(wl),
                        partitions);
            double local_tput = 0;
            for (auto setup : bench::allSetups) {
                auto bed = bench::makeBed(setup);
                apps::VoltDbParams vp;
                vp.workload = wl;
                vp.partitions = partitions;
                vp.totalOps =
                    wl == apps::YcsbWorkload::E ? 6000 : 25000;
                apps::VoltDbBenchmark bench(*bed.testbed, vp);
                auto r = bench.run();
                if (setup == sys::Setup::Local)
                    local_tput = r.throughputOps;
                std::printf(" %22.0f", r.throughputOps);
            }
            std::printf("   (local=%.0f)\n", local_tput);
        }
    }
    return 0;
}
