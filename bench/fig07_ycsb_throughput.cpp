/**
 * @file
 * Fig. 7 reproduction: VoltDB throughput for YCSB workloads A and E
 * with 4 and 32 data partitions across every experimental setup.
 *
 * Paper shape (32 partitions, workload A): local fastest; scale-out
 * -5.95%, interleaved -5.62%, single -7.97%, bonding -10.03%.
 * With 4 partitions the ThymesisFlow configurations trail clearly
 * (latency + partition contention). Workload E is saturated by scans
 * for every configuration, so all bars are close.
 *
 * Thin wrapper over the tf_bench scenario of the same name; emits
 * BENCH_fig07_ycsb.json (see harness.hh for the schema).
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::scenarioMain("fig07_ycsb", argc, argv);
}
