/**
 * @file
 * The named scenarios behind tf_bench and the figure wrappers.
 *
 * Each scenario is deterministic under a fixed seed and scales
 * itself down in smoke mode so the CI bench-smoke job finishes in
 * seconds. Every bed registers its component stats into the shared
 * registry (under a per-data-point prefix) and freezes them before
 * the bed is destroyed.
 */

#include "harness.hh"

#include <array>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>

#include "apps/elastic.hh"
#include "apps/memcached.hh"
#include "apps/stream.hh"
#include "apps/voltdb.hh"
#include "dc/trace.hh"
#include "os/migration.hh"
#include "sim/logging.hh"
#include "sim/parallel/engine.hh"
#include "system/rack.hh"
#include "tflow/datapath.hh"

namespace tf::bench {
namespace {

// --------------------------- sim_kernel ----------------------------

/**
 * Event-kernel microbenchmark. Two legs:
 *
 *  - steady: self-rescheduling event chains, no cancellation — the
 *    pure push/pop floor of the kernel.
 *  - churn: the LLC ack-timer pattern — every "ack" disarms and
 *    re-arms a long-dated timeout that never fires, so the kernel
 *    sees one cancellation per executed event and dead entries pile
 *    up for a full timeout window unless it reclaims them.
 *
 * eventsPerSec* are wall-clock throughput (the only intentionally
 * non-deterministic metrics in the suite); cancelled / heapHighWater /
 * compactions are deterministic and gate the kernel's dead-entry
 * bound in CI.
 */
void
runSimKernel(ScenarioContext &ctx)
{
    const std::uint64_t total = ctx.smoke() ? 600'000 : 4'000'000;
    constexpr int kChans = 64;
    const sim::Tick ackTimeout = 20'000;

    // Steady leg: kChans independent chains, no cancels.
    {
        sim::EventQueue eq;
        sim::Rng rng(ctx.seed());
        eq.attachStats(ctx.registry().at("sim.eq.steady"));
        std::uint64_t fired = 0;
        std::function<void()> chain = [&]() {
            if (++fired + kChans <= total)
                eq.scheduleIn(20 + rng.below(60), chain);
        };
        for (int ch = 0; ch < kChans; ++ch)
            eq.scheduleIn(1 + rng.below(40), chain);
        auto t0 = std::chrono::steady_clock::now();
        eq.run();
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        ctx.metric("eventsPerSecSteady",
                   static_cast<double>(eq.executed()) / secs,
                   "events/s");
        ctx.addRun(eq);
    }

    // Churn leg: ack-progress timer discipline (see file comment).
    {
        sim::EventQueue eq;
        sim::Rng rng(ctx.seed());
        eq.attachStats(ctx.registry().at("sim.eq.churn"));
        std::vector<sim::EventQueue::EventId> timer(
            kChans, sim::EventQueue::invalidEvent);
        auto payload = std::make_shared<std::uint64_t>(0);
        std::uint64_t fired = 0;
        std::function<void(int)> ack = [&](int ch) {
            if (timer[ch] != sim::EventQueue::invalidEvent)
                eq.deschedule(timer[ch]);
            timer[ch] = eq.scheduleIn(
                ackTimeout, [payload, ch]() { *payload += ch; });
            ++fired;
            if (fired + kChans <= total)
                eq.scheduleIn(20 + rng.below(60),
                              [&ack, ch]() { ack(ch); });
        };
        for (int ch = 0; ch < kChans; ++ch)
            eq.scheduleIn(1 + rng.below(40), [&ack, ch]() { ack(ch); });
        auto t0 = std::chrono::steady_clock::now();
        eq.run();
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        ctx.metric("eventsPerSecChurn",
                   static_cast<double>(eq.executed()) / secs,
                   "events/s");
        ctx.metric("churnCancelled",
                   static_cast<double>(eq.cancelled()), "events");
        ctx.metric("churnHeapHighWater",
                   static_cast<double>(eq.heapHighWater()), "entries");
        ctx.metric("churnCompactions",
                   static_cast<double>(eq.compactions()), "events");
        ctx.addRun(eq);
    }
    ctx.registry().freezeAll();
}

// ------------------------- proto_datapath --------------------------

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;

/** Bare datapath rig (Section V prototype characterisation). */
struct Rig
{
    sim::EventQueue eq;
    sim::Rng rng;
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<flow::Datapath> dp;

    explicit Rig(std::uint64_t seed, flow::FlowParams params = {},
                 mem::DramParams dparams = {})
        : rng(seed)
    {
        dram = std::make_unique<mem::Dram>("donorDram", eq, dparams,
                                           &store);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids, *dram,
            rng, kSection);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0});
        dp->attach(1, kDonorBase + kSection, 2, {0, 1});
    }
};

/** Unloaded flit RTT: zero-latency memory isolates the datapath. */
void
protoRttPoint(ScenarioContext &sub)
{
    mem::DramParams dparams;
    dparams.accessLatency = 0;
    dparams.bandwidthBps = 1e15;
    flow::FlowParams fp;
    sub.applyFlowOverrides(fp);
    Rig rig(sub.seed(), fp, dparams);
    // Spans always on: this point feeds the trace.attr.* latency
    // gates, which must exist in plain smoke runs, not only --trace.
    rig.eq.trace().setFull(true);
    rig.eq.trace().setIdTag(1); // unique ids across points
    rig.dp->registerStats(sub.registry(), "proto.rtt");
    rig.eq.attachStats(sub.registry().at("proto.rtt.eq"));
    auto txn = mem::makeTxn(mem::TxnType::ReadReq, kWindowBase + 0x100);
    rig.dp->issue(txn);
    rig.eq.run();
    sub.metric("rttNs", rig.dp->compute().rttNs().mean(), "ns");
    sub.addRun(rig.eq);
    sub.collectTrace(rig.eq, "proto.rtt");
    sub.registry().freezeAll();
}

/**
 * Loaded bandwidth through one flow. The warmup fills the credit and
 * tag pipelines; resetAll() then clears the registered stats so the
 * exported counters describe the measured phase only.
 */
void
protoBandwidthPoint(ScenarioContext &sub, const std::string &prefix,
                    mem::Addr base, bool quantiles, int warmup,
                    int total)
{
    flow::FlowParams fp;
    sub.applyFlowOverrides(fp);
    Rig rig(sub.seed(), fp);
    // Only the quantile (single-flow) point records spans: pooling
    // attribution across load levels would blur the stage medians.
    // It records them unconditionally — the loaded-point p99 table is
    // what the bench regression gates check on every smoke run.
    bool traced = quantiles;
    if (traced) {
        rig.eq.trace().setFull(true);
        rig.eq.trace().setIdTag(2);
    }
    rig.dp->registerStats(sub.registry(), prefix);
    rig.eq.attachStats(sub.registry().at(prefix + ".eq"));
    // Warmup chains straight into the measured phase. Draining the
    // pipeline between the two and re-issuing the 192-deep window at
    // once would push a one-shot convoy through every stage; at the
    // smoke sizing that startup transient is >1% of the samples and
    // would sit inside the p99 the bench gates, masking the steady
    // state this point exists to measure. Stats and spans are reset
    // at the warmup-completion boundary instead (in-flight trips are
    // excluded from the attribution by its started-in-window rule).
    const int issuedTotal = warmup + total;
    int issued = 0, completed = 0;
    sim::Tick start = 0;
    std::function<void()> one = [&]() {
        if (issued >= issuedTotal)
            return;
        auto txn = mem::makeTxn(
            mem::TxnType::ReadReq,
            base + (static_cast<mem::Addr>(issued) * 128) % kSection);
        ++issued;
        txn->onComplete = [&](mem::MemTxn &) {
            if (++completed == warmup) {
                sub.registry().resetAll(prefix);
                if (traced)
                    rig.eq.trace().clear();
                start = rig.eq.now();
            }
            one();
        };
        rig.dp->issue(txn);
    };
    for (int i = 0; i < 192 && i < issuedTotal; ++i)
        one();
    rig.eq.run();
    double gib = static_cast<double>(total) * 128 /
                 (1024.0 * 1024 * 1024) /
                 sim::toSec(rig.eq.now() - start);
    if (quantiles) {
        sub.metric("singleGiBs", gib, "GiB/s");
        const sim::SampleStat &rtt = rig.dp->compute().rttNs();
        sub.metric("rttP50Ns", rtt.quantile(0.50), "ns");
        sub.metric("rttP95Ns", rtt.quantile(0.95), "ns");
        sub.metric("rttP99Ns", rtt.quantile(0.99), "ns");
    } else {
        sub.metric("bondedGiBs", gib, "GiB/s");
    }
    sub.addRun(rig.eq);
    if (traced)
        sub.collectTrace(rig.eq, prefix);
    sub.registry().freezeAll();
}

/** OpenCAPI C1 ceiling at a given transaction size. */
void
protoC1Point(ScenarioContext &sub, std::uint32_t bytes, int total)
{
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram("dram", eq, mem::DramParams{}, &store);
    ocapi::PasidRegistry pasids;
    ocapi::C1Master c1("c1", eq, ocapi::C1Params{}, pasids, dram);
    c1.attachStats(
        sub.registry().at("proto.c1b" + std::to_string(bytes)));
    ocapi::Pasid pasid = pasids.allocate();
    pasids.registerRegion(pasid, 0, 1ULL << 30);
    int done = 0;
    for (int i = 0; i < total; ++i) {
        auto txn = mem::makeTxn(
            mem::TxnType::WriteReq,
            (static_cast<mem::Addr>(i) * bytes) % (1ULL << 30),
            bytes);
        txn->data.assign(bytes, 0);
        c1.master(pasid, txn, [&done](mem::TxnPtr) { ++done; });
    }
    eq.run();
    double gib = static_cast<double>(total) * bytes /
                 (1024.0 * 1024 * 1024) / sim::toSec(eq.now());
    sub.metric("c1GiBs" + std::to_string(bytes), gib, "GiB/s");
    sub.addRun(eq);
    sub.registry().freezeAll();
}

void
runProtoDatapath(ScenarioContext &ctx)
{
    const int total = ctx.smoke() ? 8000 : 40000;
    const int warmup = 2000;

    // Five independent rigs = five data points for --jobs.
    ctx.runPoints(5, [&](ScenarioContext &sub, std::size_t i) {
        switch (i) {
          case 0:
            protoRttPoint(sub);
            break;
          case 1:
            protoBandwidthPoint(sub, "proto.single", kWindowBase,
                                true, warmup, total);
            break;
          case 2:
            // Bonded bandwidth (flow 2 spans both channels).
            protoBandwidthPoint(sub, "proto.bonded",
                                kWindowBase + kSection, false, warmup,
                                total);
            break;
          case 3:
            protoC1Point(sub, 128, total);
            break;
          case 4:
            protoC1Point(sub, 256, total);
            break;
        }
    });
}

// -------------------------- fig05_stream ---------------------------

void
runFig05Stream(ScenarioContext &ctx)
{
    const std::vector<apps::StreamKernel> kernels =
        ctx.smoke() ? std::vector<apps::StreamKernel>{
                          apps::StreamKernel::Copy}
                    : std::vector<apps::StreamKernel>{
                          apps::StreamKernel::Add,
                          apps::StreamKernel::Copy,
                          apps::StreamKernel::Scale,
                          apps::StreamKernel::Triad};
    const std::vector<int> threadCounts =
        ctx.smoke() ? std::vector<int>{8}
                    : std::vector<int>{4, 8, 16};
    const std::uint64_t elements =
        ctx.smoke() ? 256 * 1024 : 1024 * 1024;

    struct Point
    {
        sys::Setup setup;
        int threads;
        apps::StreamKernel kernel;
        bool latencyPoint;
    };
    std::vector<Point> points;
    for (auto setup : streamSetups)
        for (int threads : threadCounts)
            for (auto kernel : kernels)
                points.push_back(
                    Point{setup, threads, kernel,
                          kernel == kernels.front() &&
                              threads == threadCounts.front()});

    ctx.runPoints(
        points.size(), [&](ScenarioContext &sub, std::size_t i) {
            const Point &pt = points[i];
            const char *name = sys::setupName(pt.setup);
            // Small cache (4 MiB) vs the streaming arrays: streaming
            // defeats the cache as in the real setup.
            auto bed = makeBed(pt.setup, 256ULL * 1024 * 1024,
                               4ULL * 1024 * 1024, sub.seed());
            std::string point =
                std::string(apps::streamKernelName(pt.kernel)) +
                std::to_string(pt.threads) + "t." + name;
            bed.testbed->registerStats(sub.registry(), point);
            apps::StreamParams sp;
            sp.elements = elements;
            sp.threads = pt.threads;
            sp.iterations = 1;
            apps::StreamBenchmark bench(*bed.testbed, sp);
            auto r = bench.run(pt.kernel);
            sub.metric(point, r.bestGiBs, "GiB/s");
            if (pt.latencyPoint) {
                const sim::SampleStat &rtt =
                    bed.testbed->datapath()->compute().rttNs();
                std::string lat = std::string("rtt.") + name;
                sub.metric(lat + ".p50Us", rtt.quantile(0.50) / 1000,
                           "us");
                sub.metric(lat + ".p95Us", rtt.quantile(0.95) / 1000,
                           "us");
                sub.metric(lat + ".p99Us", rtt.quantile(0.99) / 1000,
                           "us");
            }
            sub.addRun(*bed.eq);
            sub.registry().freezeAll();
        });
}

// ------------------------- fig07_ycsb ------------------------------

void
runFig07Ycsb(ScenarioContext &ctx)
{
    const std::vector<int> partitionCounts =
        ctx.smoke() ? std::vector<int>{4} : std::vector<int>{4, 32};

    struct Point
    {
        apps::YcsbWorkload workload;
        int partitions;
        sys::Setup setup;
        bool latencyPoint;
    };
    std::vector<Point> points;
    for (auto wl : {apps::YcsbWorkload::A, apps::YcsbWorkload::E})
        for (int partitions : partitionCounts)
            for (auto setup : allSetups)
                points.push_back(
                    Point{wl, partitions, setup,
                          wl == apps::YcsbWorkload::A &&
                              partitions == partitionCounts.front()});

    ctx.runPoints(
        points.size(), [&](ScenarioContext &sub, std::size_t i) {
            const Point &pt = points[i];
            auto bed = makeBed(pt.setup, 512ULL * 1024 * 1024,
                               64ULL * 1024 * 1024, sub.seed());
            std::string point =
                std::string(apps::ycsbName(pt.workload)) + "." +
                std::to_string(pt.partitions) + "p." +
                sys::setupName(pt.setup);
            // Scale-out points run client/server traffic over the
            // Ethernet model, so collecting here puts Stage::Eth
            // spans into the Perfetto export alongside the datapath.
            if (sub.traceEnabled()) {
                bed.eq->trace().setFull(true);
                bed.eq->trace().setIdTag(
                    static_cast<std::uint32_t>(i) + 1);
            }
            bed.testbed->registerStats(sub.registry(), point);
            apps::VoltDbParams vp;
            vp.workload = pt.workload;
            vp.partitions = pt.partitions;
            std::uint64_t ops =
                pt.workload == apps::YcsbWorkload::E ? 6000 : 25000;
            vp.totalOps = sub.smoke() ? ops / 5 : ops;
            apps::VoltDbBenchmark bench(*bed.testbed, vp);
            auto r = bench.run();
            sub.metric(point + ".ops", r.throughputOps, "ops/s");
            if (pt.latencyPoint)
                sub.latencyUs(point + ".", r.latencyUs);
            sub.addRun(*bed.eq);
            if (sub.traceEnabled())
                sub.collectTrace(*bed.eq, point);
            sub.registry().freezeAll();
        });
}

// ------------------------ fig08_memcached --------------------------

void
runFig08Memcached(ScenarioContext &ctx)
{
    ctx.runPoints(
        allSetups.size(), [&](ScenarioContext &sub, std::size_t i) {
            sys::Setup setup = allSetups[i];
            const char *name = sys::setupName(setup);
            auto bed = makeBed(setup, 512ULL * 1024 * 1024,
                               8ULL * 1024 * 1024, sub.seed());
            bed.testbed->registerStats(sub.registry(), name);
            apps::MemcachedParams mp;
            if (sub.smoke()) {
                mp.cacheItems = 24000;
                mp.keySpaceItems = 36000;
                mp.requestsPerThread = 300;
            } else {
                mp.cacheItems = 120000;
                mp.keySpaceItems = 180000; // keeps 10:15 GiB ratio
                mp.requestsPerThread = 1500;
            }
            apps::MemcachedBenchmark bench(*bed.testbed, mp);
            auto r = bench.run();
            sub.metric(std::string("ops.") + name, r.throughputOps,
                       "ops/s");
            sub.metric(std::string("hit.") + name, r.hitRatio);
            sub.latencyUs(std::string("get.") + name + ".",
                          r.getLatencyUs);
            if (!sub.smoke()) {
                // The figure is a CDF: emit the full series per
                // config, under --out (never the source tree).
                std::ofstream cdf(sub.outDir() + "/fig08_cdf_" +
                                  name + ".dat");
                cdf << "# GET latency (us)  cumulative fraction\n";
                r.getLatencyUs.writeCdf(cdf, 200);
            }
            sub.addRun(*bed.eq);
            sub.registry().freezeAll();
        });
}

// ------------------------- fig09_elastic ---------------------------

void
runFig09Elastic(ScenarioContext &ctx)
{
    struct Point
    {
        apps::EsChallenge challenge;
        std::uint64_t ops;
    };
    const std::vector<Point> points = {
        {apps::EsChallenge::RNQIHBS, 30},
        {apps::EsChallenge::RTQ, 150},
        {apps::EsChallenge::RSTQ, 50},
        {apps::EsChallenge::MA, 400},
    };
    const std::vector<int> shardCounts =
        ctx.smoke() ? std::vector<int>{5} : std::vector<int>{5, 32};

    struct Cell
    {
        Point point;
        int shards;
        sys::Setup setup;
    };
    std::vector<Cell> cells;
    for (const auto &pt : points)
        for (int shards : shardCounts)
            for (auto setup : allSetups)
                cells.push_back(Cell{pt, shards, setup});

    ctx.runPoints(
        cells.size(), [&](ScenarioContext &sub, std::size_t i) {
            const Cell &cell = cells[i];
            auto bed = makeBed(cell.setup, 768ULL * 1024 * 1024,
                               64ULL * 1024 * 1024, sub.seed());
            std::string point =
                std::string(
                    apps::esChallengeName(cell.point.challenge)) +
                "." + std::to_string(cell.shards) + "s." +
                sys::setupName(cell.setup);
            if (sub.traceEnabled()) {
                bed.eq->trace().setFull(true);
                bed.eq->trace().setIdTag(
                    static_cast<std::uint32_t>(i) + 1);
            }
            bed.testbed->registerStats(sub.registry(), point);
            apps::ElasticParams ep;
            ep.challenge = cell.point.challenge;
            ep.shards = cell.shards;
            ep.totalOps =
                sub.smoke()
                    ? std::max<std::uint64_t>(cell.point.ops / 5, 10)
                    : cell.point.ops;
            apps::ElasticBenchmark bench(*bed.testbed, ep);
            auto r = bench.run();
            sub.metric(point + ".ops", r.throughputOps, "ops/s");
            if (cell.point.challenge == apps::EsChallenge::RTQ &&
                cell.shards == shardCounts.front())
                sub.latencyUs(point + ".", r.latencyUs);
            sub.addRun(*bed.eq);
            if (sub.traceEnabled())
                sub.collectTrace(*bed.eq, point);
            sub.registry().freezeAll();
        });
}

// ------------------------- parallel_scale --------------------------

/**
 * Parallel-engine scaling: an 8-rack cluster replaying a sharded
 * ClusterData-like trace, once on 1 worker and once on N. The two
 * legs must agree on every deterministic counter (the engine's core
 * guarantee — TF_ASSERT-enforced here on every run, not just in the
 * unit tests); events/s and speedup are the wall-clock payoff.
 */
void
runParallelScale(ScenarioContext &ctx)
{
    dc::TraceParams tp;
    tp.jobs = ctx.smoke() ? 2000 : 12000;
    tp.meanInterarrival = sim::microseconds(25);
    dc::TraceGenerator gen(tp, ctx.seed());

    sys::RackParams rp;
    rp.racks = 8;
    const auto shards = dc::shardTrace(gen.generate(), rp.racks);

    struct Leg
    {
        std::uint64_t events;
        std::uint64_t windows;
        std::uint64_t merged;
        std::uint64_t ops;
        std::uint64_t cross;
        double secs;
    };
    auto runLeg = [&](unsigned jobs, bool record) {
        sim::par::ParallelEngine engine(jobs);
        sys::RackCluster cluster("rack", engine, shards, rp,
                                 ctx.seed());
        // Trace only the recorded leg; buffers are per-LP and filled
        // in each LP's own deterministic event order, so the
        // collection is identical for any worker count.
        if (record && ctx.traceEnabled()) {
            for (std::size_t i = 0; i < engine.lpCount(); ++i) {
                auto &tb = engine.lp(i).queue().trace();
                tb.setFull(true);
                tb.setIdTag(static_cast<std::uint32_t>(i) + 1);
                tb.setName("rack" + std::to_string(i));
            }
        }
        auto start = std::chrono::steady_clock::now();
        engine.run();
        Leg leg;
        leg.secs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        leg.events = engine.executed();
        leg.windows = engine.windows();
        leg.merged = engine.merged();
        leg.ops = cluster.opsCompleted();
        leg.cross = cluster.crossRackOps();
        if (record) {
            cluster.registerStats(ctx.registry(), "sys");
            engine.attachStats(ctx.registry(), "sim.par",
                               /*wallClock=*/true);
            ctx.registry().freezeAll();
            for (std::size_t i = 0; i < engine.lpCount(); ++i) {
                ctx.addRun(engine.lp(i).queue());
                if (ctx.traceEnabled())
                    ctx.collectTrace(engine.lp(i).queue(),
                                     "rack" + std::to_string(i));
            }
        }
        return leg;
    };

    // Default to 4 workers (the CI runner size) when the driver did
    // not ask for parallelism explicitly; never fewer than 2, so the
    // threaded path is always exercised.
    unsigned parJobs =
        ctx.jobs() > 1
            ? ctx.jobs()
            : std::max(2u, std::min(4u,
                           std::thread::hardware_concurrency()));

    Leg serial = runLeg(1, /*record=*/false);
    Leg parallel = runLeg(parJobs, /*record=*/true);

    TF_ASSERT(serial.events == parallel.events &&
                  serial.windows == parallel.windows &&
                  serial.merged == parallel.merged &&
                  serial.ops == parallel.ops &&
                  serial.cross == parallel.cross,
              "parallel run diverged from serial: events %llu/%llu "
              "windows %llu/%llu ops %llu/%llu",
              static_cast<unsigned long long>(serial.events),
              static_cast<unsigned long long>(parallel.events),
              static_cast<unsigned long long>(serial.windows),
              static_cast<unsigned long long>(parallel.windows),
              static_cast<unsigned long long>(serial.ops),
              static_cast<unsigned long long>(parallel.ops));

    // Deterministic outputs first: identical for any seed-matched
    // run, whatever the thread count or machine.
    ctx.metric("opsCompleted",
               static_cast<double>(parallel.ops), "ops");
    ctx.metric("crossRackOps",
               static_cast<double>(parallel.cross), "ops");
    ctx.metric("eventsTotal",
               static_cast<double>(parallel.events), "events");
    ctx.metric("windows",
               static_cast<double>(parallel.windows), "windows");
    ctx.metric("mergedMsgs",
               static_cast<double>(parallel.merged), "msgs");

    // Wall-clock outputs: machine-dependent, excluded from the
    // determinism cross-check (which runs other scenarios anyway).
    ctx.metric("jobsParallel", static_cast<double>(parJobs));
    ctx.metric("eventsPerSecSerial",
               static_cast<double>(serial.events) / serial.secs,
               "events/s");
    ctx.metric("eventsPerSecParallel",
               static_cast<double>(parallel.events) / parallel.secs,
               "events/s");
    ctx.metric("speedup", serial.secs / parallel.secs);
}

// --------------------------- fault_soak -----------------------------

/**
 * Chaos soak: a bonding-disaggregated testbed under a deterministic
 * FaultPlan while a closed-loop workload writes and reads back donor
 * memory through the datapath. Point 0 runs a scripted schedule that
 * hits every transient fault kind; the remaining points run
 * Plan::randomized soaks with per-point seeds. Invariants,
 * TF_ASSERT-enforced on every run:
 *
 *  - every transaction completes exactly once — ok or error, none
 *    lost, no hang (the request deadline bounds the tail);
 *  - every read of a line whose writes all settled Ok returns the
 *    bytes of the last such write (a line with an error-completed
 *    write is tainted: at-least-once failover may still apply the
 *    write later, so its content is legitimately ambiguous);
 *  - after the plan drains, a verification sweep over the surviving
 *    allocation completes error-free in bounded time.
 */
void
faultSoakPoint(ScenarioContext &sub, std::size_t point, int totalOps)
{
    const sim::Tick deadline = sim::microseconds(400);
    const sim::Tick horizon = sim::microseconds(300);
    const std::string prefix = "p" + std::to_string(point);

    auto eq = std::make_unique<sim::EventQueue>();
    sys::TestbedParams tp;
    tp.setup = sys::Setup::BondingDisaggregated;
    tp.donatedBytes = 64ULL * 1024 * 1024;
    tp.node.cache = mem::CacheParams{4ULL * 1024 * 1024, 8, 128};
    tp.seed = sub.seed();
    tp.flow.requestDeadline = deadline;
    // Escalate quickly (4 x 5 us of ack silence = link down) so the
    // scripted flaps walk the whole repair ladder inside the soak's
    // few-hundred-microsecond horizon.
    tp.flow.ackTimeout = sim::microseconds(5);
    tp.flow.maxReplayRounds = 4;
    auto bed = std::make_unique<sys::Testbed>(*eq, tp);
    bed->controlPlane().setHoldDown(*eq, sim::microseconds(5),
                                    sim::microseconds(80));
    if (sub.traceEnabled()) {
        eq->trace().setFull(true);
        eq->trace().setIdTag(static_cast<std::uint32_t>(point) + 1);
    }

    sim::fault::Registry reg;
    bed->registerFaultPoints(reg);
    sim::fault::Engine engine(*eq, reg);
    sim::fault::Plan plan;
    if (point == 0) {
        sim::fault::GilbertElliott ge;
        ge.pGoodBad = 0.05;
        ge.pBadGood = 0.3;
        ge.errGood = 0.0005;
        ge.errBad = 0.5;
        // The first flap outlives the escalation threshold, so it
        // walks the full ladder: link down -> salvage -> degrade ->
        // auto-recover -> hold-down -> readmit -> regrow.
        plan.flap(sim::microseconds(40), "tflow.ch0",
                  sim::microseconds(80))
            .burst(sim::microseconds(90), "tflow.ch1.wire",
                   sim::microseconds(30), ge)
            .starve(sim::microseconds(130), "tflow.ch0.credits",
                    sim::microseconds(15))
            .stall(sim::microseconds(160), "serverB.dram",
                   sim::microseconds(10))
            .spike(sim::microseconds(180), "net.serverA->serverB",
                   sim::microseconds(40), sim::microseconds(3))
            .outage(sim::microseconds(200), "ctrl",
                    sim::microseconds(40))
            // Flap inside the outage window: the link-down lands
            // while the plane is out, is deferred, and is replayed
            // when the outage lifts.
            .flap(sim::microseconds(205), "tflow.ch1",
                  sim::microseconds(40));
    } else {
        plan = sim::fault::Plan::randomized(
            sub.seed() * 1000 + point, horizon, reg, 10);
    }
    engine.arm(plan);

    bed->registerStats(sub.registry(), prefix);
    engine.attachStats(sub.registry().at(prefix + ".fault"));
    eq->attachStats(sub.registry().at(prefix + ".eq"));

    // Windowed telemetry (--timeline-window): per-point series, so
    // the soak's injected faults can be lined up against the latency
    // and error perturbations they cause. Series carry the point
    // prefix because every point merges into one parent timeline.
    const double tlUs = sub.timelineWindowUs();
    std::unique_ptr<sim::timeline::Recorder> rec;
    sim::Counter opsDone, errsDone;
    sim::QuantileSketch latSk;
    int inflight = 0;
    if (tlUs > 0) {
        rec = std::make_unique<sim::timeline::Recorder>(
            *eq, sim::microseconds(tlUs));
        rec->addCounter(prefix + ".ops", opsDone, "ops");
        rec->addCounter(prefix + ".errs", errsDone, "txns");
        rec->addSketch(prefix + ".lat", latSk, "Us", "us");
        rec->addGauge(
            prefix + ".inflight",
            [&inflight]() { return static_cast<double>(inflight); },
            "txns");
        sim::timeline::Recorder *r = rec.get();
        std::string fprefix = prefix;
        engine.setObserver(
            [r, fprefix](const sim::fault::Event &ev) {
                r->noteFault(fprefix + "." +
                                 sim::fault::kindName(ev.kind) + ":" +
                                 ev.point,
                             ev.at, ev.at + ev.duration);
            });
        rec->start();
    }

    const mem::Addr base =
        bed->serverA().datapath()->compute().window().base;
    const std::uint64_t lines = 256;

    std::vector<std::uint8_t> expected(lines, 0);
    std::vector<bool> valid(lines, false);
    std::vector<bool> tainted(lines, false);
    std::vector<bool> busy(lines, false);
    sim::Rng wrng(sub.seed() ^ (0x9e3779b97f4a7c15ULL *
                                (point + 1)));

    std::uint64_t launched = 0, completed = 0, okN = 0, errN = 0,
                  timedOutN = 0, byteErrors = 0;
    const int window = 48;

    std::function<void()> issueOne = [&]() {
        // One outstanding transaction per line: bonded routing can
        // reorder same-address writes across channels, which would
        // make "expected" ambiguous without this.
        std::uint64_t line = wrng.below(lines);
        while (busy[line])
            line = wrng.below(lines);
        busy[line] = true;
        bool write = wrng.chance(0.5);
        mem::Addr addr = base + line * mem::cachelineBytes;
        auto txn = mem::makeTxn(write ? mem::TxnType::WriteReq
                                      : mem::TxnType::ReadReq,
                                addr);
        std::uint8_t pat = static_cast<std::uint8_t>(
            (launched * 37 + line) & 0xff);
        if (write)
            txn->data.assign(mem::cachelineBytes, pat);
        ++launched;
        ++inflight;
        sim::Tick t0 = eq->now();
        txn->onComplete = [&, line, write, pat, t0](mem::MemTxn &t) {
            ++completed;
            --inflight;
            busy[line] = false;
            opsDone.inc();
            latSk.add(sim::toUs(eq->now() - t0));
            if (t.status != mem::TxnStatus::Ok)
                errsDone.inc();
            if (t.status == mem::TxnStatus::Ok) {
                ++okN;
                if (write) {
                    expected[line] = pat;
                    valid[line] = true;
                } else if (valid[line] && !tainted[line]) {
                    for (std::uint8_t b : t.data)
                        if (b != expected[line]) {
                            ++byteErrors;
                            break;
                        }
                }
            } else {
                if (t.status == mem::TxnStatus::TimedOut)
                    ++timedOutN;
                else
                    ++errN;
                if (write)
                    tainted[line] = true;
            }
            if (launched < static_cast<std::uint64_t>(totalOps))
                issueOne();
        };
        bed->serverA().issue(std::move(txn));
    };
    for (int i = 0; i < window && i < totalOps; ++i)
        issueOne();
    eq->run();

    TF_ASSERT(completed == launched && inflight == 0,
              "soak lost transactions: %llu launched, %llu completed",
              static_cast<unsigned long long>(launched),
              static_cast<unsigned long long>(completed));
    TF_ASSERT(byteErrors == 0,
              "soak read back %llu corrupted lines",
              static_cast<unsigned long long>(byteErrors));

    // Recovery proof: with the plan drained and every transient fault
    // healed, a sweep over the settled lines must complete error-free
    // — unless the plan legitimately killed the allocation (both
    // channels down at once tears the flow down, scripted plans
    // don't, randomized ones may).
    bool allocAlive =
        bed->controlPlane().allocation(bed->allocationId()) != nullptr;
    std::uint64_t sweepErrors = 0, sweepBad = 0;
    sim::Tick sweepStart = eq->now();
    // Last sweep-read completion; eq->now() after run() would also
    // count the deadline sweeper's trailing (idle) timer event.
    sim::Tick sweepEnd = sweepStart;
    if (allocAlive) {
        std::uint64_t swept = 0;
        std::function<void(std::uint64_t)> sweep =
            [&](std::uint64_t line) {
                if (line >= lines)
                    return;
                if (!valid[line] || tainted[line]) {
                    sweep(line + 1);
                    return;
                }
                auto txn = mem::makeTxn(mem::TxnType::ReadReq,
                                        base +
                                            line * mem::cachelineBytes);
                txn->onComplete = [&, line](mem::MemTxn &t) {
                    ++swept;
                    sweepEnd = eq->now();
                    if (t.status != mem::TxnStatus::Ok) {
                        ++sweepErrors;
                    } else {
                        for (std::uint8_t b : t.data)
                            if (b != expected[line]) {
                                ++sweepBad;
                                break;
                            }
                    }
                    sweep(line + 1);
                };
                bed->serverA().issue(std::move(txn));
            };
        sweep(0);
        // The sampler disarmed when the soak drained; re-arm it so
        // the sweep's windows are recorded too.
        if (rec)
            rec->ensureArmed();
        eq->run();
        TF_ASSERT(sweepErrors == 0 && sweepBad == 0,
                  "post-recovery sweep: %llu errors, %llu bad lines",
                  static_cast<unsigned long long>(sweepErrors),
                  static_cast<unsigned long long>(sweepBad));
        // Bounded recovery: the sweep is sequential, so each read is
        // bounded by the deadline sweeper's worst case (1.5x).
        TF_ASSERT(sweepEnd - sweepStart <= (swept + 1) * deadline * 2,
                  "post-recovery sweep exceeded its latency bound");
    }

    sub.metric(prefix + ".txns", static_cast<double>(launched),
               "txns");
    sub.metric(prefix + ".txnsOk", static_cast<double>(okN), "txns");
    sub.metric(prefix + ".errorCompletions",
               static_cast<double>(errN), "txns");
    sub.metric(prefix + ".timedOut", static_cast<double>(timedOutN),
               "txns");
    sub.metric(prefix + ".faultsFired",
               static_cast<double>(engine.fired()), "events");
    sub.metric(prefix + ".recoveryUs",
               allocAlive ? sim::toUs(sweepEnd - sweepStart) : 0.0,
               "us");
    sub.metric(prefix + ".allocAlive", allocAlive ? 1.0 : 0.0);
    sub.addRun(*eq);
    if (sub.traceEnabled())
        sub.collectTrace(*eq, prefix);

    if (rec) {
        rec->finish();
        sub.timeline().adopt(*rec);

        // Causality check, scripted plan only (point 0's schedule is
        // built to hit live traffic): every injected fault window
        // must overlap — within a generous +/-2-window slack — some
        // visible perturbation: an error completion, a windowed p99
        // at least twice the quiet floor, or a throughput dip below
        // half the peak.
        if (point == 0) {
            const auto &tl = sub.timeline();
            const sim::Tick W = sim::microseconds(tlUs);
            const std::size_t n = tl.windows();
            double quiet = 0.0, peakOps = 0.0;
            for (std::size_t w = 0; w < n; ++w) {
                double p99 = tl.at(prefix + ".latP99Us", w);
                if (std::isfinite(p99) && p99 > 0 &&
                    (quiet == 0.0 || p99 < quiet))
                    quiet = p99;
                peakOps =
                    std::max(peakOps, tl.at(prefix + ".ops", w));
            }
            auto perturbed = [&](std::size_t w) {
                if (tl.at(prefix + ".errs", w) > 0)
                    return true;
                double p99 = tl.at(prefix + ".latP99Us", w);
                if (std::isfinite(p99) && p99 > 2 * quiet)
                    return true;
                return peakOps > 0 &&
                       tl.at(prefix + ".ops", w) < 0.5 * peakOps;
            };
            for (const auto &f : tl.faults()) {
                std::size_t wb = f.begin / W;
                std::size_t we =
                    std::min(n ? n - 1 : 0, f.end / W + 2);
                wb = wb > 2 ? wb - 2 : 0;
                bool hit = false;
                for (std::size_t w = wb; w <= we && !hit; ++w)
                    hit = perturbed(w);
                TF_ASSERT(hit,
                          "fault %s [%llu, %llu] left no mark in any "
                          "timeline series",
                          f.label.c_str(),
                          static_cast<unsigned long long>(f.begin),
                          static_cast<unsigned long long>(f.end));
            }
        }
    }
    sub.registry().freezeAll();
}

void
runFaultSoak(ScenarioContext &ctx)
{
    // Sized so the closed loop is still running when the last plan
    // event fires (~300 us at ~30 txns/us), faults hit live traffic.
    const int totalOps = ctx.smoke() ? 9000 : 36000;
    const std::size_t pointCount = ctx.smoke() ? 3 : 6;
    ctx.runPoints(pointCount,
                  [&](ScenarioContext &sub, std::size_t i) {
                      faultSoakPoint(sub, i, totalOps);
                  });
}

// ----------------------- cache_vs_migration -------------------------

enum class CvmMode { Local, Remote, Cache, Migrate };

/**
 * Working-set-vs-budget sweep. Points 0/1 are the references (local
 * DRAM; uncached full-RTT remote); the cache points run the same
 * skewed workload through the compute-side page cache at working
 * sets of 0.5x / 2x / 4x the frame budget; the numa points run it
 * under AutoNUMA-style page migration (the ablation_autonuma
 * mitigation) at the same working sets.
 */
struct CvmPoint
{
    const char *label;
    CvmMode mode;
    double ratio; ///< working set as a multiple of the frame budget
};

constexpr CvmPoint kCvmPoints[] = {
    {"local", CvmMode::Local, 0.0},
    {"remote", CvmMode::Remote, 0.0},
    {"cacheFit", CvmMode::Cache, 0.5},
    {"cacheOver2x", CvmMode::Cache, 2.0},
    {"cacheOver4x", CvmMode::Cache, 4.0},
    {"numaFit", CvmMode::Migrate, 0.5},
    {"numaOver2x", CvmMode::Migrate, 2.0},
    {"numaOver4x", CvmMode::Migrate, 4.0},
};

constexpr std::size_t kCvmPointCount = std::size(kCvmPoints);

void
cacheVsMigrationPoint(ScenarioContext &sub, std::size_t point,
                      int totalOps, double *p50OutUs)
{
    const CvmPoint &pt = kCvmPoints[point];
    const std::string prefix = "p" + std::to_string(point);
    constexpr std::uint32_t kBudget = 64; ///< cache frames
    // Small pages keep fills cheap (64 lines) and the sweep fast.
    constexpr std::uint64_t kPageBytes = 8 * 1024;
    constexpr std::uint64_t kScanEvery = 500; ///< accesses per scan

    auto eq = std::make_unique<sim::EventQueue>();
    sys::TestbedParams tp;
    tp.setup = sys::Setup::SingleDisaggregated;
    tp.donatedBytes = 32ULL * 1024 * 1024;
    tp.node.pageBytes = kPageBytes;
    tp.node.cache = mem::CacheParams{4ULL * 1024 * 1024, 8, 128};
    tp.seed = sub.seed();
    if (pt.mode == CvmMode::Cache) {
        tp.enablePageCache = true;
        tp.pageCache.frameBudget = kBudget;
        tp.pageCache.partitions = 4;
        tp.pageCache.maxInflightFills = 4;
        tp.pageCache.maxInflightFlushes = 2;
        tp.pageCache.lineMlp = 8;
        tp.pageCache.lowWatermark = 4;
        tp.pageCache.highWatermark = 8;
    }
    auto bed = std::make_unique<sys::Testbed>(*eq, tp);
    if (sub.traceEnabled()) {
        eq->trace().setFull(true);
        eq->trace().setIdTag(static_cast<std::uint32_t>(point) + 1);
    }

    auto &node = bed->serverA();
    const std::uint64_t wsPages =
        pt.ratio > 0.0
            ? static_cast<std::uint64_t>(kBudget * pt.ratio)
            : kBudget;
    const std::uint64_t hotPages =
        std::max<std::uint64_t>(1, wsPages / 10);
    const mem::Addr windowBase =
        bed->datapath()->compute().window().base;

    // Per-mode address provider: page index -> physical line base.
    std::vector<mem::Addr> localFrames;
    std::unique_ptr<os::AddressSpace> space;
    std::unique_ptr<os::AutoNuma> autonuma;
    if (pt.mode == CvmMode::Local) {
        for (std::uint64_t p = 0; p < wsPages; ++p) {
            auto f = node.mm().allocPageOn(node.localNode());
            TF_ASSERT(f.has_value(), "local reference out of memory");
            localFrames.push_back(*f);
        }
    } else if (pt.mode == CvmMode::Migrate) {
        space = std::make_unique<os::AddressSpace>(
            node.mm(), node.localNode(),
            os::AllocPolicy::bind({node.tflowNode()}));
        os::AutoNumaParams anp;
        anp.hotThreshold = 8;
        anp.maxMigrationsPerScan = 32;
        autonuma = std::make_unique<os::AutoNuma>(node.mm(), anp);
    }
    mem::Addr migVa =
        space ? space->mmap(wsPages * kPageBytes) : 0;

    bed->registerStats(sub.registry(), prefix);
    eq->attachStats(sub.registry().at(prefix + ".eq"));

    sim::SampleStat lat;
    sim::Rng rng(sub.seed() ^
                 (0x9e3779b97f4a7c15ULL * (point + 1)));
    const int warmup = totalOps / 4;
    const int window = 8; ///< workload MLP
    int launched = 0, finished = 0, inflight = 0;
    std::uint64_t migratedPages = 0;

    // Page-copy cost of one migration: the kernel streams the page
    // out of the donor before the local frame goes live.
    auto chargeCopy = [&](std::uint64_t pageIdx) {
        mem::Addr pageBase =
            windowBase + (pageIdx % wsPages) * kPageBytes;
        for (std::uint64_t off = 0; off < kPageBytes;
             off += mem::cachelineBytes) {
            auto rd = mem::makeTxn(mem::TxnType::ReadReq,
                                   pageBase + off);
            rd->onComplete = [](mem::MemTxn &) {};
            node.issue(std::move(rd));
        }
    };

    std::function<void()> issueOne = [&]() {
        if (launched >= totalOps)
            return;
        int op = launched++;
        std::uint64_t page =
            rng.chance(0.9)
                ? rng.below(hotPages)
                : hotPages + rng.below(wsPages - hotPages);
        std::uint64_t off = mem::alignDown(rng.below(kPageBytes),
                                           mem::cachelineBytes);
        bool write = rng.chance(0.3);

        mem::Addr addr = 0;
        switch (pt.mode) {
          case CvmMode::Local:
            addr = localFrames[page] + off;
            break;
          case CvmMode::Remote:
          case CvmMode::Cache:
            addr = windowBase + page * kPageBytes + off;
            break;
          case CvmMode::Migrate: {
            mem::Addr va = migVa + page * kPageBytes + off;
            autonuma->recordAccess(*space, va, node.localNode());
            auto pa = space->translate(va);
            TF_ASSERT(pa.has_value(), "migration leg out of memory");
            addr = *pa;
            if (op > 0 &&
                static_cast<std::uint64_t>(op) % kScanEvery == 0) {
                auto decisions = autonuma->scan();
                migratedPages += decisions.size();
                for (std::size_t m = 0; m < decisions.size(); ++m)
                    chargeCopy(migratedPages + m);
            }
            break;
          }
        }

        auto txn = mem::makeTxn(write ? mem::TxnType::WriteReq
                                      : mem::TxnType::ReadReq,
                                addr);
        if (write)
            txn->data.assign(mem::cachelineBytes,
                             static_cast<std::uint8_t>(op & 0xff));
        sim::Tick t0 = eq->now();
        ++inflight;
        txn->onComplete = [&, t0, op](mem::MemTxn &t) {
            TF_ASSERT(t.status == mem::TxnStatus::Ok,
                      "cache sweep access failed (%s)",
                      mem::statusName(t.status));
            ++finished;
            --inflight;
            if (op >= warmup)
                lat.add(sim::toUs(eq->now() - t0));
            issueOne();
        };
        node.issue(std::move(txn));
    };
    for (int i = 0; i < window && i < totalOps; ++i)
        issueOne();
    eq->run();

    TF_ASSERT(finished == totalOps && inflight == 0,
              "cache sweep lost accesses: %d launched, %d finished",
              launched, finished);

    *p50OutUs = lat.quantile(0.5);
    sub.metric(prefix + ".accesses",
               static_cast<double>(totalOps), "ops");
    sub.latencyUs(prefix + ".lat", lat);
    if (pt.mode == CvmMode::Cache) {
        os::PageCache *pc = bed->pageCache();
        TF_ASSERT(pc->hits() + pc->misses() ==
                      static_cast<std::uint64_t>(totalOps),
                  "cache accounting mismatch");
        TF_ASSERT(pc->fillErrors() == 0 && pc->wbErrors() == 0,
                  "cache sweep saw IO errors on a healthy path");
        sub.metric(prefix + ".hitRate", pc->hitRate());
        sub.metric(prefix + ".fills",
                   static_cast<double>(pc->fills()), "pages");
        sub.metric(prefix + ".evictions",
                   static_cast<double>(pc->evictions()), "pages");
        sub.metric(prefix + ".writebacks",
                   static_cast<double>(pc->writebacks()), "pages");
    } else if (pt.mode == CvmMode::Migrate) {
        sub.metric(prefix + ".migratedPages",
                   static_cast<double>(migratedPages), "pages");
        auto res = space->residency();
        sub.metric(prefix + ".localPages",
                   static_cast<double>(res[node.localNode()]),
                   "pages");
    }
    sub.addRun(*eq);
    if (sub.traceEnabled())
        sub.collectTrace(*eq, prefix);
    sub.registry().freezeAll();
}

void
runCacheVsMigration(ScenarioContext &ctx)
{
    const int totalOps = ctx.smoke() ? 4000 : 16000;
    std::array<double, kCvmPointCount> p50Us{};
    ctx.runPoints(kCvmPointCount,
                  [&](ScenarioContext &sub, std::size_t i) {
                      cacheVsMigrationPoint(sub, i, totalOps,
                                            &p50Us[i]);
                  });

    // The headline claims, asserted on every run: the uncached
    // window pays the full RTT, and a cache-friendly working set
    // lands within 2x of local DRAM.
    TF_ASSERT(p50Us[1] >= 4.0 * p50Us[0],
              "uncached remote p50 %.3f us not >> local %.3f us",
              p50Us[1], p50Us[0]);
    TF_ASSERT(p50Us[2] <= 2.0 * p50Us[0],
              "cache-friendly p50 %.3f us not within 2x of local "
              "%.3f us",
              p50Us[2], p50Us[0]);
    ctx.metric("remoteP50VsLocal", p50Us[1] / p50Us[0], "x");
    ctx.metric("cacheFitP50VsLocal", p50Us[2] / p50Us[0], "x");
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> table = {
        {"sim_kernel",
         "Event-kernel events/sec: steady chains + "
         "schedule/cancel-heavy ack-timer churn",
         true, runSimKernel},
        {"proto_datapath",
         "Section V prototype: flit RTT, channel/bonded bandwidth, "
         "C1 ceiling",
         true, runProtoDatapath},
        {"fig05_stream",
         "Fig. 5: STREAM sustained bandwidth per configuration",
         true, runFig05Stream},
        {"fig07_ycsb",
         "Fig. 7: VoltDB YCSB A/E throughput per configuration",
         false, runFig07Ycsb},
        {"fig08_memcached",
         "Fig. 8: Memcached GET latency under the ETC-style load",
         true, runFig08Memcached},
        {"fig09_elastic",
         "Fig. 9: Elasticsearch 'nested' track throughput",
         false, runFig09Elastic},
        {"parallel_scale",
         "Parallel engine: 8-rack trace replay, serial vs threaded "
         "(identical results, events/s speedup)",
         true, runParallelScale},
        {"fault_soak",
         "Chaos soak: seeded FaultPlans against the bonded testbed "
         "with invariant-checked recovery",
         true, runFaultSoak},
        {"cache_vs_migration",
         "Compute-side page cache vs AutoNUMA migration: skewed "
         "working sets at 0.5x/2x/4x the frame budget",
         true, runCacheVsMigration},
    };
    return table;
}

} // namespace tf::bench
