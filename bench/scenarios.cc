/**
 * @file
 * The named scenarios behind tf_bench and the figure wrappers.
 *
 * Each scenario is deterministic under a fixed seed and scales
 * itself down in smoke mode so the CI bench-smoke job finishes in
 * seconds. Every bed registers its component stats into the shared
 * registry (under a per-data-point prefix) and freezes them before
 * the bed is destroyed.
 */

#include "harness.hh"

#include <chrono>
#include <fstream>
#include <functional>
#include <memory>

#include "apps/elastic.hh"
#include "apps/memcached.hh"
#include "apps/stream.hh"
#include "apps/voltdb.hh"
#include "tflow/datapath.hh"

namespace tf::bench {
namespace {

// --------------------------- sim_kernel ----------------------------

/**
 * Event-kernel microbenchmark. Two legs:
 *
 *  - steady: self-rescheduling event chains, no cancellation — the
 *    pure push/pop floor of the kernel.
 *  - churn: the LLC ack-timer pattern — every "ack" disarms and
 *    re-arms a long-dated timeout that never fires, so the kernel
 *    sees one cancellation per executed event and dead entries pile
 *    up for a full timeout window unless it reclaims them.
 *
 * eventsPerSec* are wall-clock throughput (the only intentionally
 * non-deterministic metrics in the suite); cancelled / heapHighWater /
 * compactions are deterministic and gate the kernel's dead-entry
 * bound in CI.
 */
void
runSimKernel(ScenarioContext &ctx)
{
    const std::uint64_t total = ctx.smoke() ? 600'000 : 4'000'000;
    constexpr int kChans = 64;
    const sim::Tick ackTimeout = 20'000;

    // Steady leg: kChans independent chains, no cancels.
    {
        sim::EventQueue eq;
        sim::Rng rng(ctx.seed());
        eq.attachStats(ctx.registry().at("sim.eq.steady"));
        std::uint64_t fired = 0;
        std::function<void()> chain = [&]() {
            if (++fired + kChans <= total)
                eq.scheduleIn(20 + rng.below(60), chain);
        };
        for (int ch = 0; ch < kChans; ++ch)
            eq.scheduleIn(1 + rng.below(40), chain);
        auto t0 = std::chrono::steady_clock::now();
        eq.run();
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        ctx.metric("eventsPerSecSteady",
                   static_cast<double>(eq.executed()) / secs,
                   "events/s");
        ctx.addRun(eq);
    }

    // Churn leg: ack-progress timer discipline (see file comment).
    {
        sim::EventQueue eq;
        sim::Rng rng(ctx.seed());
        eq.attachStats(ctx.registry().at("sim.eq.churn"));
        std::vector<sim::EventQueue::EventId> timer(
            kChans, sim::EventQueue::invalidEvent);
        auto payload = std::make_shared<std::uint64_t>(0);
        std::uint64_t fired = 0;
        std::function<void(int)> ack = [&](int ch) {
            if (timer[ch] != sim::EventQueue::invalidEvent)
                eq.deschedule(timer[ch]);
            timer[ch] = eq.scheduleIn(
                ackTimeout, [payload, ch]() { *payload += ch; });
            ++fired;
            if (fired + kChans <= total)
                eq.scheduleIn(20 + rng.below(60),
                              [&ack, ch]() { ack(ch); });
        };
        for (int ch = 0; ch < kChans; ++ch)
            eq.scheduleIn(1 + rng.below(40), [&ack, ch]() { ack(ch); });
        auto t0 = std::chrono::steady_clock::now();
        eq.run();
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        ctx.metric("eventsPerSecChurn",
                   static_cast<double>(eq.executed()) / secs,
                   "events/s");
        ctx.metric("churnCancelled",
                   static_cast<double>(eq.cancelled()), "events");
        ctx.metric("churnHeapHighWater",
                   static_cast<double>(eq.heapHighWater()), "entries");
        ctx.metric("churnCompactions",
                   static_cast<double>(eq.compactions()), "events");
        ctx.addRun(eq);
    }
    ctx.registry().freezeAll();
}

// ------------------------- proto_datapath --------------------------

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;

/** Bare datapath rig (Section V prototype characterisation). */
struct Rig
{
    sim::EventQueue eq;
    sim::Rng rng;
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<flow::Datapath> dp;

    explicit Rig(std::uint64_t seed, flow::FlowParams params = {},
                 mem::DramParams dparams = {})
        : rng(seed)
    {
        dram = std::make_unique<mem::Dram>("donorDram", eq, dparams,
                                           &store);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids, *dram,
            rng, kSection);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0});
        dp->attach(1, kDonorBase + kSection, 2, {0, 1});
    }
};

/** Issue @p total chained 128 B reads with 192 outstanding. */
void
pumpReads(Rig &rig, mem::Addr base, int total)
{
    int issued = 0;
    std::function<void()> one = [&]() {
        if (issued >= total)
            return;
        auto txn = mem::makeTxn(
            mem::TxnType::ReadReq,
            base + (static_cast<mem::Addr>(issued) * 128) % kSection);
        ++issued;
        txn->onComplete = [&](mem::MemTxn &) { one(); };
        rig.dp->issue(txn);
    };
    for (int i = 0; i < 192 && i < total; ++i)
        one();
    rig.eq.run();
}

void
runProtoDatapath(ScenarioContext &ctx)
{
    const int total = ctx.smoke() ? 8000 : 40000;
    const int warmup = 2000;

    // Unloaded flit RTT: zero-latency memory isolates the datapath.
    {
        mem::DramParams dparams;
        dparams.accessLatency = 0;
        dparams.bandwidthBps = 1e15;
        Rig rig(ctx.seed(), flow::FlowParams{}, dparams);
        rig.dp->registerStats(ctx.registry(), "proto.rtt");
        rig.eq.attachStats(ctx.registry().at("proto.rtt.eq"));
        auto txn =
            mem::makeTxn(mem::TxnType::ReadReq, kWindowBase + 0x100);
        rig.dp->issue(txn);
        rig.eq.run();
        ctx.metric("rttNs", rig.dp->compute().rttNs().mean(), "ns");
        ctx.addRun(rig.eq);
        ctx.registry().freezeAll();
    }

    // Loaded single-channel bandwidth. The warmup fills the credit
    // and tag pipelines; resetAll() then clears the registered stats
    // so the exported counters describe the measured phase only.
    {
        Rig rig(ctx.seed());
        rig.dp->registerStats(ctx.registry(), "proto.single");
        rig.eq.attachStats(ctx.registry().at("proto.single.eq"));
        pumpReads(rig, kWindowBase, warmup);
        ctx.registry().resetAll("proto.single");
        sim::Tick start = rig.eq.now();
        pumpReads(rig, kWindowBase, total);
        double gib = static_cast<double>(total) * 128 /
                     (1024.0 * 1024 * 1024) /
                     sim::toSec(rig.eq.now() - start);
        ctx.metric("singleGiBs", gib, "GiB/s");
        const sim::SampleStat &rtt = rig.dp->compute().rttNs();
        ctx.metric("rttP50Ns", rtt.quantile(0.50), "ns");
        ctx.metric("rttP95Ns", rtt.quantile(0.95), "ns");
        ctx.metric("rttP99Ns", rtt.quantile(0.99), "ns");
        ctx.addRun(rig.eq);
        ctx.registry().freezeAll();
    }

    // Loaded bonded bandwidth (flow 2 spans both channels).
    {
        Rig rig(ctx.seed());
        rig.dp->registerStats(ctx.registry(), "proto.bonded");
        rig.eq.attachStats(ctx.registry().at("proto.bonded.eq"));
        pumpReads(rig, kWindowBase + kSection, warmup);
        ctx.registry().resetAll("proto.bonded");
        sim::Tick start = rig.eq.now();
        pumpReads(rig, kWindowBase + kSection, total);
        double gib = static_cast<double>(total) * 128 /
                     (1024.0 * 1024 * 1024) /
                     sim::toSec(rig.eq.now() - start);
        ctx.metric("bondedGiBs", gib, "GiB/s");
        ctx.addRun(rig.eq);
        ctx.registry().freezeAll();
    }

    // OpenCAPI C1 ceiling with 128 B vs 256 B transactions.
    for (std::uint32_t bytes : {128u, 256u}) {
        sim::EventQueue eq;
        mem::BackingStore store;
        mem::Dram dram("dram", eq, mem::DramParams{}, &store);
        ocapi::PasidRegistry pasids;
        ocapi::C1Master c1("c1", eq, ocapi::C1Params{}, pasids, dram);
        c1.attachStats(
            ctx.registry().at("proto.c1b" + std::to_string(bytes)));
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, 0, 1ULL << 30);
        int done = 0;
        for (int i = 0; i < total; ++i) {
            auto txn = mem::makeTxn(
                mem::TxnType::WriteReq,
                (static_cast<mem::Addr>(i) * bytes) % (1ULL << 30),
                bytes);
            txn->data.assign(bytes, 0);
            c1.master(pasid, txn, [&done](mem::TxnPtr) { ++done; });
        }
        eq.run();
        double gib = static_cast<double>(total) * bytes /
                     (1024.0 * 1024 * 1024) / sim::toSec(eq.now());
        ctx.metric("c1GiBs" + std::to_string(bytes), gib, "GiB/s");
        ctx.addRun(eq);
        ctx.registry().freezeAll();
    }
}

// -------------------------- fig05_stream ---------------------------

void
runFig05Stream(ScenarioContext &ctx)
{
    const std::vector<apps::StreamKernel> kernels =
        ctx.smoke() ? std::vector<apps::StreamKernel>{
                          apps::StreamKernel::Copy}
                    : std::vector<apps::StreamKernel>{
                          apps::StreamKernel::Add,
                          apps::StreamKernel::Copy,
                          apps::StreamKernel::Scale,
                          apps::StreamKernel::Triad};
    const std::vector<int> threadCounts =
        ctx.smoke() ? std::vector<int>{8}
                    : std::vector<int>{4, 8, 16};
    const std::uint64_t elements =
        ctx.smoke() ? 256 * 1024 : 1024 * 1024;

    for (auto setup : streamSetups) {
        const char *name = sys::setupName(setup);
        for (int threads : threadCounts) {
            for (auto kernel : kernels) {
                // Small cache (4 MiB) vs the streaming arrays:
                // streaming defeats the cache as in the real setup.
                auto bed =
                    makeBed(setup, 256ULL * 1024 * 1024,
                            4ULL * 1024 * 1024, ctx.seed());
                std::string point =
                    std::string(apps::streamKernelName(kernel)) +
                    std::to_string(threads) + "t." + name;
                bed.testbed->registerStats(ctx.registry(), point);
                apps::StreamParams sp;
                sp.elements = elements;
                sp.threads = threads;
                sp.iterations = 1;
                apps::StreamBenchmark bench(*bed.testbed, sp);
                auto r = bench.run(kernel);
                ctx.metric(point, r.bestGiBs, "GiB/s");
                if (kernel == kernels.front() &&
                    threads == threadCounts.front()) {
                    const sim::SampleStat &rtt =
                        bed.testbed->datapath()->compute().rttNs();
                    std::string lat = std::string("rtt.") + name;
                    ctx.metric(lat + ".p50Us",
                               rtt.quantile(0.50) / 1000, "us");
                    ctx.metric(lat + ".p95Us",
                               rtt.quantile(0.95) / 1000, "us");
                    ctx.metric(lat + ".p99Us",
                               rtt.quantile(0.99) / 1000, "us");
                }
                ctx.addRun(*bed.eq);
                ctx.registry().freezeAll();
            }
        }
    }
}

// ------------------------- fig07_ycsb ------------------------------

void
runFig07Ycsb(ScenarioContext &ctx)
{
    const std::vector<int> partitionCounts =
        ctx.smoke() ? std::vector<int>{4} : std::vector<int>{4, 32};
    for (auto wl : {apps::YcsbWorkload::A, apps::YcsbWorkload::E}) {
        for (int partitions : partitionCounts) {
            for (auto setup : allSetups) {
                auto bed = makeBed(setup, 512ULL * 1024 * 1024,
                                   64ULL * 1024 * 1024, ctx.seed());
                std::string point =
                    std::string(apps::ycsbName(wl)) + "." +
                    std::to_string(partitions) + "p." +
                    sys::setupName(setup);
                bed.testbed->registerStats(ctx.registry(), point);
                apps::VoltDbParams vp;
                vp.workload = wl;
                vp.partitions = partitions;
                std::uint64_t ops =
                    wl == apps::YcsbWorkload::E ? 6000 : 25000;
                vp.totalOps = ctx.smoke() ? ops / 5 : ops;
                apps::VoltDbBenchmark bench(*bed.testbed, vp);
                auto r = bench.run();
                ctx.metric(point + ".ops", r.throughputOps,
                           "ops/s");
                if (wl == apps::YcsbWorkload::A &&
                    partitions == partitionCounts.front())
                    ctx.latencyUs(point + ".", r.latencyUs);
                ctx.addRun(*bed.eq);
                ctx.registry().freezeAll();
            }
        }
    }
}

// ------------------------ fig08_memcached --------------------------

void
runFig08Memcached(ScenarioContext &ctx)
{
    for (auto setup : allSetups) {
        const char *name = sys::setupName(setup);
        auto bed = makeBed(setup, 512ULL * 1024 * 1024,
                           8ULL * 1024 * 1024, ctx.seed());
        bed.testbed->registerStats(ctx.registry(), name);
        apps::MemcachedParams mp;
        if (ctx.smoke()) {
            mp.cacheItems = 24000;
            mp.keySpaceItems = 36000;
            mp.requestsPerThread = 300;
        } else {
            mp.cacheItems = 120000;
            mp.keySpaceItems = 180000; // keeps the 10:15 GiB ratio
            mp.requestsPerThread = 1500;
        }
        apps::MemcachedBenchmark bench(*bed.testbed, mp);
        auto r = bench.run();
        ctx.metric(std::string("ops.") + name, r.throughputOps,
                   "ops/s");
        ctx.metric(std::string("hit.") + name, r.hitRatio);
        ctx.latencyUs(std::string("get.") + name + ".",
                      r.getLatencyUs);
        if (!ctx.smoke()) {
            // The figure is a CDF: emit the full series per config.
            std::ofstream cdf(std::string("fig08_cdf_") + name +
                              ".dat");
            cdf << "# GET latency (us)  cumulative fraction\n";
            r.getLatencyUs.writeCdf(cdf, 200);
        }
        ctx.addRun(*bed.eq);
        ctx.registry().freezeAll();
    }
}

// ------------------------- fig09_elastic ---------------------------

void
runFig09Elastic(ScenarioContext &ctx)
{
    struct Point
    {
        apps::EsChallenge challenge;
        std::uint64_t ops;
    };
    const std::vector<Point> points = {
        {apps::EsChallenge::RNQIHBS, 30},
        {apps::EsChallenge::RTQ, 150},
        {apps::EsChallenge::RSTQ, 50},
        {apps::EsChallenge::MA, 400},
    };
    const std::vector<int> shardCounts =
        ctx.smoke() ? std::vector<int>{5} : std::vector<int>{5, 32};

    for (const auto &pt : points) {
        for (int shards : shardCounts) {
            for (auto setup : allSetups) {
                auto bed = makeBed(setup, 768ULL * 1024 * 1024,
                                   64ULL * 1024 * 1024, ctx.seed());
                std::string point =
                    std::string(apps::esChallengeName(pt.challenge)) +
                    "." + std::to_string(shards) + "s." +
                    sys::setupName(setup);
                bed.testbed->registerStats(ctx.registry(), point);
                apps::ElasticParams ep;
                ep.challenge = pt.challenge;
                ep.shards = shards;
                ep.totalOps =
                    ctx.smoke() ? std::max<std::uint64_t>(
                                      pt.ops / 5, 10)
                                : pt.ops;
                apps::ElasticBenchmark bench(*bed.testbed, ep);
                auto r = bench.run();
                ctx.metric(point + ".ops", r.throughputOps,
                           "ops/s");
                if (pt.challenge == apps::EsChallenge::RTQ &&
                    shards == shardCounts.front())
                    ctx.latencyUs(point + ".", r.latencyUs);
                ctx.addRun(*bed.eq);
                ctx.registry().freezeAll();
            }
        }
    }
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> table = {
        {"sim_kernel",
         "Event-kernel events/sec: steady chains + "
         "schedule/cancel-heavy ack-timer churn",
         true, runSimKernel},
        {"proto_datapath",
         "Section V prototype: flit RTT, channel/bonded bandwidth, "
         "C1 ceiling",
         true, runProtoDatapath},
        {"fig05_stream",
         "Fig. 5: STREAM sustained bandwidth per configuration",
         true, runFig05Stream},
        {"fig07_ycsb",
         "Fig. 7: VoltDB YCSB A/E throughput per configuration",
         false, runFig07Ycsb},
        {"fig08_memcached",
         "Fig. 8: Memcached GET latency under the ETC-style load",
         true, runFig08Memcached},
        {"fig09_elastic",
         "Fig. 9: Elasticsearch 'nested' track throughput",
         false, runFig09Elastic},
    };
    return table;
}

} // namespace tf::bench
