/**
 * @file
 * AutoNUMA page-migration ablation (Section IV-B).
 *
 * The paper maps each disaggregated section to a CPU-less NUMA node
 * precisely so the kernel's existing NUMA balancing can migrate hot
 * pages from distant (remote) to closer (local) memory. This bench
 * quantifies that mitigation: a skewed workload starts with every
 * page remote (bind policy); with migration enabled the hot set
 * moves local epoch by epoch and the mean access latency falls
 * towards local DRAM latency, at the price of the page-copy traffic.
 */

#include <cstdio>
#include <functional>

#include "common.hh"
#include "os/migration.hh"
#include "system/memory_path.hh"

using namespace tf;

namespace {

constexpr int kEpochs = 8;
constexpr int kAccessesPerEpoch = 20000;
constexpr std::uint64_t kPages = 512;
constexpr double kHotFraction = 0.1;
constexpr double kHotProbability = 0.9;

struct EpochResult
{
    double meanUs;
    std::uint64_t localPages;
    std::uint64_t migrations;
};

std::vector<EpochResult>
run(bool migrationEnabled)
{
    auto bed = bench::makeBed(sys::Setup::SingleDisaggregated,
                              256ULL * 1024 * 1024,
                              2ULL * 1024 * 1024);
    auto &tb = *bed.testbed;
    auto &eq = *bed.eq;
    auto &node = tb.serverA();
    std::uint64_t page_bytes = node.mm().pageBytes();

    os::AddressSpace space(node.mm(), node.localNode(),
                           os::AllocPolicy::bind({node.tflowNode()}));
    sys::MemoryPath path(node);
    os::AutoNumaParams anp;
    anp.hotThreshold = 64;
    anp.maxMigrationsPerScan = 32;
    os::AutoNuma autonuma(node.mm(), anp);

    mem::Addr va = space.mmap(kPages * page_bytes);
    sim::Rng rng(31);
    std::uint64_t hot_pages =
        static_cast<std::uint64_t>(kPages * kHotFraction);

    std::vector<EpochResult> epochs;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        sim::Tick epoch_start = eq.now();
        int issued = 0;
        std::function<void()> one = [&]() {
            if (issued >= kAccessesPerEpoch)
                return;
            ++issued;
            std::uint64_t page =
                rng.chance(kHotProbability)
                    ? rng.below(hot_pages)
                    : hot_pages + rng.below(kPages - hot_pages);
            mem::Addr addr =
                va + page * page_bytes +
                mem::alignDown(rng.below(page_bytes),
                               mem::cachelineBytes);
            autonuma.recordAccess(space, addr, node.localNode());
            path.burst(space, {addr}, false, 1, [&]() { one(); });
        };
        for (int c = 0; c < 8; ++c)
            one();
        eq.run();
        double mean_us = sim::toUs(eq.now() - epoch_start) /
                         kAccessesPerEpoch * 8;

        std::uint64_t migrated = 0;
        if (migrationEnabled) {
            auto decisions = autonuma.scan();
            migrated = decisions.size();
            // Charge the page-copy cost: each migration moves a
            // whole page across the datapath.
            for (const auto &d : decisions) {
                (void)d;
                std::vector<mem::Addr> lines;
                for (std::uint64_t off = 0; off < page_bytes;
                     off += mem::cachelineBytes)
                    lines.push_back(va + off);
                path.burst(space, lines, true, 16, []() {});
            }
            eq.run();
        }
        auto res = space.residency();
        epochs.push_back(EpochResult{
            mean_us, res[node.localNode()],
            autonuma.migrations()});
        (void)migrated;
    }
    return epochs;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: AutoNUMA page migration on "
                "disaggregated memory ===\n");
    std::printf("%zu pages, %.0f%% of accesses to the hottest "
                "%.0f%%, all pages initially remote\n",
                (size_t)kPages, kHotProbability * 100,
                kHotFraction * 100);

    auto off = run(false);
    auto on = run(true);
    std::printf("%-7s %16s %16s %14s %12s\n", "epoch",
                "off: mean us", "on: mean us", "local pages",
                "migrations");
    for (int e = 0; e < kEpochs; ++e) {
        std::printf("%-7d %16.3f %16.3f %14llu %12llu\n", e,
                    off[static_cast<std::size_t>(e)].meanUs,
                    on[static_cast<std::size_t>(e)].meanUs,
                    (unsigned long long)
                        on[static_cast<std::size_t>(e)].localPages,
                    (unsigned long long)
                        on[static_cast<std::size_t>(e)].migrations);
    }
    double gain = off.back().meanUs / on.back().meanUs;
    std::printf("\nsteady-state speedup from NUMA balancing: "
                "%.2fx\n", gain);
    return 0;
}
