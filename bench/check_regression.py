#!/usr/bin/env python3
"""Perf-regression gate over tf_bench JSON results.

Compares every metric in BENCH_<scenario>.json files against the
checked-in baseline and fails (exit 1) when a metric moved more than
the threshold in its bad direction: below baseline for higher-is-
better metrics (bandwidth, throughput, hit ratio), above baseline for
lower-is-better ones (latency quantiles, replay/stall/drop counts).

The simulator is deterministic under a fixed seed, so any drift is a
code change, not noise; the 15% default threshold only keeps
intentional model retunes from needing a baseline refresh for every
small shift.

Every baselined metric carries an explicit direction; an entry
without one is a hard failure (never a silent higher-is-better
guess), and --update refuses to classify a metric that matches no
polarity hint. The baseline's optional "ceilings" section adds
absolute lower-is-better budgets (e.g. the sub-2 us
trace.attr.total.p99Ns gate on proto_datapath) that hold no matter
where the relative baseline drifts; --update carries them forward
untouched.

Every baselined scenario must be present in the results with a
matching config; an absent result file or a smoke/full mismatch is a
hard failure, not a skip, so a CI leg that silently stops running a
scenario cannot keep passing. Legs that only run a subset pass
--scenario (repeatable) to name the scenarios they gate.

Usage:
  check_regression.py --baseline bench/baseline.json --results DIR
  check_regression.py --baseline bench/baseline.json --results DIR \
      --scenario cache_vs_migration   # gate only this scenario
  check_regression.py --baseline bench/baseline.json --results DIR \
      --update    # regenerate the baseline from the results

Standard library only (CI runs it on a bare runner).
"""

import argparse
import glob
import json
import os
import sys

# Polarity hints. A metric name must match exactly one of the two
# lists; --update refuses to baseline a metric it cannot classify and
# check() hard-fails a baseline entry without an explicit direction.
# The quantile suffixes (Us/Ns cover latP99Us, rttP95Ns and every
# trace.attr.<stage>.{p50,p95,p99}Ns attribution metric) are the ones
# the p99 gates ride on: an unhinted latency metric silently gated in
# the higher-is-better direction would wave regressions through.
LOWER_IS_BETTER_HINTS = (
    "Us", "Ns", "latency", "replay", "stall", "drop", "teardown",
    "HighWater", "Compactions", "Cancelled", "recovery", "error",
    "timedOut", "violations", "worstValue", "occupancy",
)

HIGHER_IS_BETTER_HINTS = (
    "GiBs", "Bps", "hit", "ops", "Ops", "accesses", "txns",
    "windows", "eventsPerSec", "eventsTotal", "fills", "evictions",
    "writebacks", "Pages", "Alive", "faultsFired", "VsLocal",
    "count", "copy", "Msgs", "speedup", "jobsParallel",
)


def infer_direction(name):
    """Metric polarity from its name, or None when no hint matches
    (or both do) -- callers must treat None as an error, never guess.
    """
    lower = any(h in name for h in LOWER_IS_BETTER_HINTS)
    higher = any(h in name for h in HIGHER_IS_BETTER_HINTS)
    if lower == higher:
        return None
    return "lower" if lower else "higher"


def load_results(results_dir):
    docs = {}
    pattern = os.path.join(results_dir, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        with open(path) as f:
            doc = json.load(f)
        # v2 == v1 plus an optional `timeline` section; the metrics
        # this gate reads are unchanged, so both schemas are accepted
        # (old baselines keep working against new results).
        if doc.get("schema") not in ("tf-bench-v1", "tf-bench-v2"):
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        docs[doc["scenario"]] = doc
    if not docs:
        sys.exit(f"no BENCH_*.json found in {results_dir}")
    return docs


def update_baseline(baseline_path, docs, threshold):
    # Absolute ceilings are curated by hand, not measured: carry them
    # across refreshes so --update cannot silently drop a gate.
    ceilings = {}
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            ceilings = json.load(f).get("ceilings", {})

    scenarios = {}
    unclassified = []
    for name, doc in sorted(docs.items()):
        metrics = {}
        for metric, value in sorted(doc["metrics"].items()):
            direction = infer_direction(metric)
            if direction is None:
                unclassified.append(f"{name}.{metric}")
                continue
            metrics[metric] = {"value": value, "direction": direction}
        scenarios[name] = {
            "config": doc["meta"]["config"],
            "seed": doc["meta"]["seed"],
            "metrics": metrics,
        }
    if unclassified:
        sys.exit("refusing to baseline metrics with no (or an "
                 "ambiguous) polarity hint -- extend the hint lists "
                 "in check_regression.py:\n  " +
                 "\n  ".join(unclassified))
    baseline = {
        "schema": "tf-bench-baseline-v1",
        "threshold": threshold,
        "scenarios": scenarios,
    }
    if ceilings:
        baseline["ceilings"] = ceilings
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    total = sum(len(s["metrics"]) for s in scenarios.values())
    print(f"baseline refreshed: {len(scenarios)} scenarios, "
          f"{total} metrics -> {baseline_path}")


def check(baseline_path, docs, threshold_override, only):
    with open(baseline_path) as f:
        baseline = json.load(f)
    if baseline.get("schema") != "tf-bench-baseline-v1":
        sys.exit(f"{baseline_path}: unexpected baseline schema")
    threshold = (threshold_override
                 if threshold_override is not None
                 else baseline.get("threshold", 0.15))

    if only:
        unknown = sorted(set(only) - set(baseline["scenarios"]))
        if unknown:
            sys.exit(f"--scenario {', '.join(unknown)}: "
                     f"not in {baseline_path}")

    failures = []
    checked = 0
    for scenario, base in sorted(baseline["scenarios"].items()):
        if only and scenario not in only:
            continue
        doc = docs.get(scenario)
        if doc is None:
            failures.append(
                f"{scenario}: baselined but no result file "
                f"(scenario dropped from the run?)")
            continue
        if doc["meta"]["config"] != base.get("config", "smoke"):
            failures.append(
                f"{scenario}: config {doc['meta']['config']} != "
                f"baseline {base.get('config')} (rerun with the "
                f"baselined config or refresh with --update)")
            continue
        for metric, entry in sorted(base["metrics"].items()):
            ref = entry["value"]
            # No guessing: a gated metric whose baseline entry lacks
            # an explicit polarity would otherwise be compared in an
            # arbitrary direction and could silently pass a regression.
            direction = entry.get("direction")
            if direction not in ("higher", "lower"):
                failures.append(
                    f"{scenario}.{metric}: baseline entry has no "
                    f"explicit direction (refresh with --update, "
                    f"extending the hint lists if needed)")
                continue
            if metric not in doc["metrics"]:
                failures.append(
                    f"{scenario}.{metric}: missing from results")
                continue
            checked += 1
            val = doc["metrics"][metric]
            if ref == 0:
                continue  # nothing meaningful to compare against
            change = (val - ref) / abs(ref)
            bad = (change < -threshold if direction == "higher"
                   else change > threshold)
            if bad:
                failures.append(
                    f"{scenario}.{metric}: {val:.4g} vs baseline "
                    f"{ref:.4g} ({change:+.1%}, {direction} is "
                    f"better, threshold {threshold:.0%})")

    # Absolute ceilings: latency budgets that must hold regardless of
    # how the baseline drifts (a 15% relative gate on an already-slow
    # baseline still passes; the ceiling does not). Lower-is-better by
    # construction.
    for scenario, caps in sorted(baseline.get("ceilings", {}).items()):
        if only and scenario not in only:
            continue
        doc = docs.get(scenario)
        if doc is None:
            continue  # absence already failed above if baselined
        for metric, cap in sorted(caps.items()):
            if metric not in doc["metrics"]:
                failures.append(
                    f"{scenario}.{metric}: ceiling {cap:g} but metric "
                    f"missing from results")
                continue
            checked += 1
            val = doc["metrics"][metric]
            if val > cap:
                failures.append(
                    f"{scenario}.{metric}: {val:.4g} exceeds absolute "
                    f"ceiling {cap:g}")
    if not only:
        for name in sorted(set(docs) - set(baseline["scenarios"])):
            print(f"  [new] {name}: not in baseline (run --update)")

    print(f"checked {checked} metrics against {baseline_path} "
          f"(threshold {threshold:.0%})")
    if failures:
        print(f"{len(failures)} regression(s):")
        for f_ in failures:
            print(f"  FAIL {f_}")
        return 1
    print("no regressions")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--results", required=True,
                    help="directory holding BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=None,
                    help="override the baseline's threshold")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the results")
    ap.add_argument("--scenario", action="append", default=None,
                    help="gate only this baselined scenario "
                         "(repeatable); default: all of them")
    args = ap.parse_args()

    docs = load_results(args.results)
    if args.update:
        if args.scenario:
            sys.exit("--update regenerates the whole baseline; "
                     "it does not combine with --scenario")
        update_baseline(args.baseline, docs,
                        args.threshold if args.threshold is not None
                        else 0.15)
        return 0
    return check(args.baseline, docs, args.threshold, args.scenario)


if __name__ == "__main__":
    sys.exit(main())
