/**
 * @file
 * Fig. 6 reproduction: VoltDB profiling across all YCSB workloads
 * and partition counts, local vs single-disaggregated.
 *
 * Reported per point: package IPC (retired instructions per cycle
 * across the CPU package) and average utilised CPU cores (UCC), plus
 * the back-end stall fraction the paper quotes in the text (55.5%
 * local vs 80.9% disaggregated on average).
 *
 * Paper shape: for mixed workloads (A, F) IPC grows with partitions
 * (biggest step 4 -> 16); read-dominated workloads (B, C, D, E) stay
 * flat. Disaggregated runs show higher UCC and lower IPC.
 */

#include "apps/voltdb.hh"
#include "common.hh"

using namespace tf;

int
main()
{
    std::printf("=== Fig. 6: VoltDB IPC / utilised CPU cores "
                "(YCSB, 2000 client threads) ===\n");
    std::printf("%-8s %-10s %-22s %8s %8s %10s\n", "workload",
                "partitions", "config", "IPC", "UCC", "stall%");

    double stall_sum[2] = {0, 0};
    int stall_n[2] = {0, 0};

    for (auto wl : {apps::YcsbWorkload::A, apps::YcsbWorkload::B,
                    apps::YcsbWorkload::C, apps::YcsbWorkload::D,
                    apps::YcsbWorkload::E, apps::YcsbWorkload::F}) {
        for (int partitions : {4, 16, 32, 64}) {
            int cfg_idx = 0;
            for (auto setup : {sys::Setup::Local,
                               sys::Setup::SingleDisaggregated}) {
                auto bed = bench::makeBed(setup);
                apps::VoltDbParams vp;
                vp.workload = wl;
                vp.partitions = partitions;
                vp.totalOps = 25000;
                if (wl == apps::YcsbWorkload::E)
                    vp.totalOps = 6000; // scans are ~40x heavier
                apps::VoltDbBenchmark bench(*bed.testbed, vp);
                auto r = bench.run();
                std::printf("%-8s %-10d %-22s %8.2f %8.2f %9.1f%%\n",
                            apps::ycsbName(wl), partitions,
                            sys::setupName(setup), r.packageIpc,
                            r.ucc, r.backendStallFraction * 100);
                stall_sum[cfg_idx] += r.backendStallFraction;
                ++stall_n[cfg_idx];
                ++cfg_idx;
            }
        }
    }
    std::printf("\naverage back-end stall fraction: local %.1f%%, "
                "single-disaggregated %.1f%% (paper: 55.5%% vs "
                "80.9%%)\n",
                100 * stall_sum[0] / stall_n[0],
                100 * stall_sum[1] / stall_n[1]);
    return 0;
}
