/**
 * @file
 * Fig. 9 reproduction: Elasticsearch ESRally "nested" track
 * throughput for the RNQIHBS / RTQ / RSTQ / MA challenges at 5 and
 * 32 shards across every experimental setup.
 *
 * Paper shape: RTQ benefits from scale-out's extra compute and
 * scale-out even beats local; ThymesisFlow configs trail
 * (interleaved -58%, bonding -43%, single -76% vs local at RTQ).
 * Challenges needing tighter shard synchronisation (RNQIHBS, RSTQ,
 * MA) degrade when shards scale; for MA all configurations are
 * close. Approximate absolute scales: RNQIHBS ~75, RTQ ~800,
 * RSTQ ~125, MA ~1.8K ops/sec.
 *
 * Thin wrapper over the tf_bench scenario of the same name; emits
 * BENCH_fig09_elastic.json (see harness.hh for the schema).
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::scenarioMain("fig09_elastic", argc, argv);
}
