/**
 * @file
 * Fig. 9 reproduction: Elasticsearch ESRally "nested" track
 * throughput for the RNQIHBS / RTQ / RSTQ / MA challenges at 5 and
 * 32 shards across every experimental setup.
 *
 * Paper shape: RTQ benefits from scale-out's extra compute and
 * scale-out even beats local; ThymesisFlow configs trail
 * (interleaved -58%, bonding -43%, single -76% vs local at RTQ).
 * Challenges needing tighter shard synchronisation (RNQIHBS, RSTQ,
 * MA) degrade when shards scale; for MA all configurations are
 * close. Approximate absolute scales: RNQIHBS ~75, RTQ ~800,
 * RSTQ ~125, MA ~1.8K ops/sec.
 */

#include "apps/elastic.hh"
#include "common.hh"

using namespace tf;

int
main()
{
    std::printf("=== Fig. 9: ESRally 'nested' track throughput "
                "(ops/sec) ===\n");
    std::printf("%-9s %-7s", "challenge", "shards");
    for (auto setup : bench::allSetups)
        std::printf(" %22s", sys::setupName(setup));
    std::printf("\n");

    struct Point
    {
        apps::EsChallenge challenge;
        std::uint64_t ops;
    };
    const std::vector<Point> points = {
        {apps::EsChallenge::RNQIHBS, 30},
        {apps::EsChallenge::RTQ, 150},
        {apps::EsChallenge::RSTQ, 50},
        {apps::EsChallenge::MA, 400},
    };

    for (const auto &pt : points) {
        for (int shards : {5, 32}) {
            std::printf("%-9s %-7d",
                        apps::esChallengeName(pt.challenge), shards);
            for (auto setup : bench::allSetups) {
                auto bed = bench::makeBed(setup,
                                          768ULL * 1024 * 1024);
                apps::ElasticParams ep;
                ep.challenge = pt.challenge;
                ep.shards = shards;
                ep.totalOps = pt.ops;
                apps::ElasticBenchmark bench(*bed.testbed, ep);
                auto r = bench.run();
                std::printf(" %22.1f", r.throughputOps);
            }
            std::printf("\n");
        }
    }
    return 0;
}
