/**
 * @file
 * Fig. 8 reproduction: Memcached GET latency CDF under the ETC-style
 * load for every experimental setup.
 *
 * Paper values: local mean ~600 us with p90 within 19% of the mean;
 * interleaved/single/bonding mean 614/635/650 us with p90
 * degradation 33/34/64%; scale-out (via Twemproxy) mean 713 us with
 * up to 2x degradation at p90. Average hit ratio 80-82%.
 *
 * Thin wrapper over the tf_bench scenario of the same name; emits
 * BENCH_fig08_memcached.json plus (in full mode) one
 * fig08_cdf_<setup>.dat CDF series per configuration.
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::scenarioMain("fig08_memcached", argc, argv);
}
