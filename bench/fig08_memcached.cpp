/**
 * @file
 * Fig. 8 reproduction: Memcached GET latency CDF under the ETC-style
 * load for every experimental setup.
 *
 * Paper values: local mean ~600 us with p90 within 19% of the mean;
 * interleaved/single/bonding mean 614/635/650 us with p90
 * degradation 33/34/64%; scale-out (via Twemproxy) mean 713 us with
 * up to 2x degradation at p90. Average hit ratio 80-82%.
 */

#include <fstream>

#include "apps/memcached.hh"
#include "common.hh"

using namespace tf;

int
main()
{
    std::printf("=== Fig. 8: Memcached GET latency (ETC model) ===\n");
    std::printf("%-22s %9s %9s %9s %9s %9s %7s\n", "config",
                "mean(us)", "p50(us)", "p90(us)", "p99(us)",
                "ops/sec", "hit%");

    for (auto setup : bench::allSetups) {
        auto bed = bench::makeBed(setup, 512ULL * 1024 * 1024,
                                  8ULL * 1024 * 1024);
        apps::MemcachedParams mp;
        mp.cacheItems = 120000;
        mp.keySpaceItems = 180000; // preserves the 10:15 GiB ratio
        mp.requestsPerThread = 1500;
        apps::MemcachedBenchmark bench(*bed.testbed, mp);
        auto r = bench.run();
        std::printf("%-22s %9.0f %9.0f %9.0f %9.0f %9.0f %6.1f%%\n",
                    sys::setupName(setup), r.getLatencyUs.mean(),
                    r.getLatencyUs.quantile(0.5),
                    r.getLatencyUs.quantile(0.9),
                    r.getLatencyUs.quantile(0.99), r.throughputOps,
                    r.hitRatio * 100);
        // The figure is a CDF: emit the full series per config.
        std::ofstream cdf(std::string("fig08_cdf_") +
                          sys::setupName(setup) + ".dat");
        cdf << "# GET latency (us)  cumulative fraction\n";
        r.getLatencyUs.writeCdf(cdf, 200);
    }
    std::printf("\npaper: local 600us (p90 +19%%); interleaved 614, "
                "single 635, bonding 650 (p90 +33/34/64%%); "
                "scale-out 713 (p90 up to +100%%); hit ratio "
                "80-82%%\n");
    return 0;
}
