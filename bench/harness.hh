/**
 * @file
 * Unified bench harness: named scenarios, deterministic seeds, and a
 * machine-readable JSON result per run.
 *
 * Every scenario runs against a ScenarioContext that collects
 *  - headline metrics (bandwidth, latency quantiles, throughput),
 *  - the full hierarchical stats registry of every testbed it drove,
 *  - run metadata (seed, git SHA, config, simulated ticks, events).
 * The harness writes one BENCH_<scenario>.json per scenario; with a
 * fixed seed the document is byte-identical across runs except for
 * the wall-clock field, which CI's regression gate ignores.
 */

#ifndef TF_BENCH_HARNESS_HH
#define TF_BENCH_HARNESS_HH

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/timeline/timeline.hh"
#include "sim/trace/export.hh"
#include "system/testbed.hh"

namespace tf::bench {

/** The five experimental configurations of Fig. 4, in paper order. */
inline const std::vector<sys::Setup> allSetups = {
    sys::Setup::Local,
    sys::Setup::SingleDisaggregated,
    sys::Setup::BondingDisaggregated,
    sys::Setup::Interleaved,
    sys::Setup::ScaleOut,
};

/** The three disaggregated configurations plotted in Fig. 5. */
inline const std::vector<sys::Setup> streamSetups = {
    sys::Setup::SingleDisaggregated,
    sys::Setup::BondingDisaggregated,
    sys::Setup::Interleaved,
};

struct Bed
{
    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<sys::Testbed> testbed;
};

/** Fresh testbed per data point so runs are independent. */
inline Bed
makeBed(sys::Setup setup,
        std::uint64_t donated = 512ULL * 1024 * 1024,
        std::uint64_t cacheBytes = 64ULL * 1024 * 1024,
        std::uint64_t seed = 42)
{
    Bed bed;
    bed.eq = std::make_unique<sim::EventQueue>();
    sys::TestbedParams tp;
    tp.setup = setup;
    tp.donatedBytes = donated;
    tp.node.cache = mem::CacheParams{cacheBytes, 8, 128};
    tp.seed = seed;
    bed.testbed = std::make_unique<sys::Testbed>(*bed.eq, tp);
    return bed;
}

/**
 * Everything one scenario run produces. Scenarios add headline
 * metrics and register component stats; the harness serialises the
 * lot plus run metadata.
 */
class ScenarioContext
{
  public:
    ScenarioContext(std::string scenario, std::uint64_t seed,
                    bool smoke);

    const std::string &scenario() const { return _scenario; }
    std::uint64_t seed() const { return _seed; }
    /** True = CI-sized run (short ticks); false = full figure. */
    bool smoke() const { return _smoke; }

    /** Worker-thread budget (--jobs); 1 = fully serial. */
    unsigned jobs() const { return _jobs; }
    void setJobs(unsigned jobs) { _jobs = jobs ? jobs : 1; }

    /** Directory scenario output files belong under (--out). */
    const std::string &outDir() const { return _outDir; }
    void setOutDir(std::string dir) { _outDir = std::move(dir); }

    /** The shared stats registry scenarios register beds into. */
    sim::StatsRegistry &registry() { return _registry; }

    /**
     * Full span tracing requested (--trace). Scenarios that support
     * it switch their queues' TraceBuffers to full mode and hand the
     * filled buffers back via collectTrace(); scenarios that don't
     * simply produce an empty trace.
     */
    bool traceEnabled() const { return _traceEnabled; }
    void setTraceEnabled(bool on) { _traceEnabled = on; }

    /**
     * Response-framing override (--cut-through on|off). Unset means
     * the FlowParams default; scenarios that build datapaths apply it
     * so the same binary can A/B the framing modes without a rebuild.
     */
    std::optional<bool> cutThroughOverride() const
    {
        return _cutThrough;
    }
    void setCutThroughOverride(std::optional<bool> v)
    {
        _cutThrough = v;
    }
    /** Apply the override (if any) to a FlowParams in place. */
    void applyFlowOverrides(flow::FlowParams &fp) const
    {
        if (_cutThrough)
            fp.cutThrough = *_cutThrough;
    }

    /**
     * Timeline window width (--timeline-window), microseconds.
     * 0 = not forced: topology runs fall back to the spec's choice
     * (on iff it declares monitors), other scenarios stay off.
     */
    double timelineWindowUs() const { return _timelineUs; }
    void setTimelineWindowUs(double us) { _timelineUs = us; }

    /**
     * The merged windowed timeline (tf-bench-v2 `timeline` section
     * + Perfetto counter tracks). Scenarios adopt their finished
     * recorders/instance timelines into it; point sub-contexts merge
     * into the parent on commit, so probes registered inside
     * runPoints() must carry a per-point prefix ("p<i>.").
     */
    sim::timeline::Timeline &timeline() { return _timeline; }
    const sim::timeline::Timeline &timeline() const
    {
        return _timeline;
    }

    /** Snapshot a queue's trace buffer under a node label. */
    void collectTrace(const sim::EventQueue &eq, std::string node);

    /** The collected spans (merged across points in index order). */
    const sim::trace::TraceCollector &collector() const
    {
        return _collector;
    }

    /**
     * Append trace.attr.<stage>.{count,p50Ns,p95Ns,p99Ns} metrics
     * (plus trace.attr.total.*) from the collected spans. Called by
     * the harness after the scenario ran, before serialisation, so
     * the attribution table lands in the same BENCH JSON.
     */
    void appendTraceMetrics();

    /** Write the collected spans (and, when the timeline is live,
     * its counter tracks + fault marks) as trace-event JSON. */
    bool writeTrace(const std::string &path);

    /** Record one headline metric (insertion order preserved). */
    void metric(const std::string &name, double value,
                const std::string &unit = "");

    /** Record mean/p50/p95/p99 of a latency sample, in micro-sec. */
    void latencyUs(const std::string &prefix,
                   const sim::SampleStat &s);

    /** Fold a drained event queue into the simTicks/events meta. */
    void addRun(const sim::EventQueue &eq);

    /**
     * Run @p count independent data points, possibly concurrently on
     * jobs() threads. Each point gets a private sub-context (same
     * scenario/seed/smoke, jobs = 1); @p fn must confine itself to
     * that sub-context and its own beds, and freeze any registered
     * stats before its components die — exactly the discipline the
     * serial scenarios already follow. Results are committed in
     * point-index order (metrics append, registries merge under
     * their sorted paths), so the output document is byte-identical
     * to a --jobs 1 run regardless of thread count or schedule.
     */
    void runPoints(
        std::size_t count,
        const std::function<void(ScenarioContext &, std::size_t)>
            &fn);

    /**
     * Serialise the full result document. @p wallMs < 0 omits the
     * wall-clock field, which makes same-seed runs byte-identical
     * (the determinism tests rely on this).
     */
    std::string toJson(double wallMs = -1) const;

    /** One-line human summary of the headline metrics. */
    void printSummary(std::FILE *out) const;

  private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
    };

    void commit(ScenarioContext &&point);

    std::string _scenario;
    std::uint64_t _seed;
    bool _smoke;
    bool _traceEnabled = false;
    std::optional<bool> _cutThrough;
    unsigned _jobs = 1;
    double _timelineUs = 0.0;
    std::string _outDir = ".";
    sim::StatsRegistry _registry;
    sim::timeline::Timeline _timeline;
    sim::trace::TraceCollector _collector;
    std::vector<Metric> _metrics;
    std::uint64_t _simTicks = 0;
    std::uint64_t _events = 0;
};

/** A named, deterministic benchmark scenario. */
struct Scenario
{
    const char *name;
    const char *description;
    /** Part of the CI --smoke subset? */
    bool inSmokeSet;
    void (*run)(ScenarioContext &ctx);
};

/** Every registered scenario, in fixed order. */
const std::vector<Scenario> &scenarios();

/**
 * The tf_bench entry point: parses --list / --smoke / --scenario /
 * --seed / --out / --trace and runs the selected scenarios, writing
 * one BENCH_<name>.json each (and, under --trace, a Perfetto-loadable
 * trace-event file).
 */
int harnessMain(int argc, char **argv);

/** Entry point for the single-figure wrapper binaries. */
int scenarioMain(const std::string &name, int argc, char **argv);

} // namespace tf::bench

#endif // TF_BENCH_HARNESS_HH
