/**
 * @file
 * Section V prototype characterisation (google-benchmark).
 *
 * Reported as benchmark counters (simulated values):
 *  - flit round-trip latency of the hardware datapath (~950 ns in
 *    the prototype, excluding the memory access itself);
 *  - loaded read bandwidth over one channel and with bonding;
 *  - the OpenCAPI C1 ceiling with 128 B vs 256 B transactions
 *    (~16 vs ~20 GiB/s).
 */

#include <benchmark/benchmark.h>

#include "mem/dram.hh"
#include "tflow/datapath.hh"

using namespace tf;

namespace {

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;

struct Rig
{
    sim::EventQueue eq;
    sim::Rng rng{1};
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<flow::Datapath> dp;

    explicit Rig(flow::FlowParams params = {},
                 mem::DramParams dparams = {})
    {
        dram = std::make_unique<mem::Dram>("donorDram", eq, dparams,
                                           &store);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params, ocapi::M1Window{kWindowBase, kWindowSize},
            pasids, *dram, rng, kSection);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0});
        dp->attach(1, kDonorBase + kSection, 2, {0, 1});
    }
};

} // namespace

/** Unloaded flit RTT: zero-latency memory isolates the datapath. */
static void
BM_FlitRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        mem::DramParams dparams;
        dparams.accessLatency = 0;
        dparams.bandwidthBps = 1e15;
        flow::FlowParams fparams;
        Rig rig(fparams, dparams);
        // C1 still charges its command overhead; that is part of the
        // endpoint, not the flit path, but it is only ~8 ns here.
        auto txn = mem::makeTxn(mem::TxnType::ReadReq,
                                kWindowBase + 0x100);
        rig.dp->issue(txn);
        rig.eq.run();
        state.counters["rtt_ns"] = rig.dp->compute().rttNs().mean();
    }
}
BENCHMARK(BM_FlitRoundTrip)->Iterations(1);

/** Loaded read bandwidth, one channel vs bonded. */
static void
BM_ReadBandwidth(benchmark::State &state)
{
    bool bonded = state.range(0) != 0;
    for (auto _ : state) {
        Rig rig;
        mem::Addr base =
            bonded ? kWindowBase + kSection : kWindowBase;
        const int total = 40000;
        int issued = 0;
        std::function<void()> one = [&]() {
            if (issued >= total)
                return;
            auto txn = mem::makeTxn(
                mem::TxnType::ReadReq,
                base + (static_cast<mem::Addr>(issued) * 128) %
                           kSection);
            ++issued;
            txn->onComplete = [&](mem::MemTxn &) { one(); };
            rig.dp->issue(txn);
        };
        for (int i = 0; i < 192; ++i)
            one();
        rig.eq.run();
        double gib = static_cast<double>(total) * 128 /
                     (1024.0 * 1024 * 1024) /
                     sim::toSec(rig.eq.now());
        state.counters["GiB_per_s"] = gib;
    }
}
BENCHMARK(BM_ReadBandwidth)->Arg(0)->Arg(1)->Iterations(1);

/** C1-mode ceiling with 128 B vs 256 B transactions. */
static void
BM_C1Ceiling(benchmark::State &state)
{
    std::uint32_t txn_bytes =
        static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        mem::BackingStore store;
        mem::Dram dram("dram", eq, mem::DramParams{}, &store);
        ocapi::PasidRegistry pasids;
        ocapi::C1Master c1("c1", eq, ocapi::C1Params{}, pasids, dram);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, 0, 1ULL << 30);
        const int total = 40000;
        int done = 0;
        for (int i = 0; i < total; ++i) {
            auto txn = mem::makeTxn(
                mem::TxnType::WriteReq,
                (static_cast<mem::Addr>(i) * txn_bytes) %
                    (1ULL << 30),
                txn_bytes);
            txn->data.assign(txn_bytes, 0);
            c1.master(pasid, txn,
                      [&done](mem::TxnPtr) { ++done; });
        }
        eq.run();
        double gib = static_cast<double>(total) * txn_bytes /
                     (1024.0 * 1024 * 1024) / sim::toSec(eq.now());
        state.counters["GiB_per_s"] = gib;
    }
}
BENCHMARK(BM_C1Ceiling)->Arg(128)->Arg(256)->Iterations(1);

BENCHMARK_MAIN();
