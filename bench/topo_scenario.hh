/**
 * @file
 * Bench adapter for declarative topologies (tf_bench --topo FILE).
 *
 * A topology file is a scenario: the spec's name names the BENCH
 * JSON, its traffic stanzas become headline metrics, and the whole
 * instantiated rig registers its stats tree — so config-driven runs
 * flow through the exact same emit path (trace collection, metrics,
 * regression gate) as the hand-written scenarios.
 */

#ifndef TF_BENCH_TOPO_SCENARIO_HH
#define TF_BENCH_TOPO_SCENARIO_HH

#include "harness.hh"
#include "topo/spec.hh"

namespace tf::bench {

/** Build, run, and harvest one topology under @p ctx's options. */
void runTopoScenario(ScenarioContext &ctx, const topo::Spec &spec);

} // namespace tf::bench

#endif // TF_BENCH_TOPO_SCENARIO_HH
