/**
 * @file
 * Baseline comparison (Section III): page-fault/swap-based remote
 * memory (Lim et al. / Infiniswap class) vs ThymesisFlow's
 * byte-addressable ld/st disaggregation.
 *
 * Sweep: working-set size relative to the local memory the swap
 * system may cache in, under uniform and Zipf access patterns.
 * Expected shape: while the working set fits locally the swap
 * baseline behaves like local DRAM and beats remote ld/st; as soon
 * as it exceeds local memory the fault path's page-granularity
 * amplification and trap costs blow up (thrashing), while the
 * ThymesisFlow access latency stays flat at ~1 us per miss —
 * the crossover that motivates hardware disaggregation.
 */

#include <cstdio>
#include <functional>

#include "mem/dram.hh"
#include "os/swap.hh"
#include "tflow/datapath.hh"

using namespace tf;

namespace {

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;
constexpr std::uint64_t kLocalBytes = 64ULL * 1024 * 1024;
constexpr int kAccesses = 60000;
constexpr int kConcurrency = 16;

struct Pattern
{
    const char *name;
    /** Returns a cacheline address inside [0, span). */
    std::function<mem::Addr(sim::Rng &, std::uint64_t)> pick;
};

double
runSwap(double wsRatio, const Pattern &pattern)
{
    sim::EventQueue eq;
    sim::Rng rng(21);
    mem::Dram dram("localDram", eq, mem::DramParams{}, nullptr);
    os::SwapParams sp;
    sp.localPages = kLocalBytes / sp.pageBytes;
    os::SwappingMemory swap("swap", eq, sp, dram);

    std::uint64_t span = static_cast<std::uint64_t>(
        wsRatio * static_cast<double>(kLocalBytes));
    int issued = 0;
    std::function<void()> one = [&]() {
        if (issued >= kAccesses)
            return;
        ++issued;
        swap.access(pattern.pick(rng, span), issued % 4 == 0,
                    [&]() { one(); });
    };
    for (int i = 0; i < kConcurrency; ++i)
        one();
    eq.run();
    return sim::toUs(eq.now()) / kAccesses * kConcurrency;
}

double
runTflow(double wsRatio, const Pattern &pattern)
{
    sim::EventQueue eq;
    sim::Rng rng(21);
    mem::Dram donor("donorDram", eq, mem::DramParams{}, nullptr);
    ocapi::PasidRegistry pasids;
    flow::Datapath dp("dp", eq, flow::FlowParams{},
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasids, donor, rng, kSection);
    auto pasid = pasids.allocate();
    pasids.registerRegion(pasid, kDonorBase, kWindowSize);
    dp.stealing().setPasid(pasid);
    for (std::size_t s = 0; s < kWindowSize / kSection; ++s)
        dp.attach(s, kDonorBase + s * kSection, 1, {0, 1});

    std::uint64_t span = static_cast<std::uint64_t>(
        wsRatio * static_cast<double>(kLocalBytes));
    span = std::min<std::uint64_t>(span, kWindowSize);
    int issued = 0;
    std::function<void()> one = [&]() {
        if (issued >= kAccesses)
            return;
        ++issued;
        mem::Addr line = pattern.pick(rng, span);
        auto txn = mem::makeTxn(issued % 4 == 0
                                    ? mem::TxnType::WriteReq
                                    : mem::TxnType::ReadReq,
                                kWindowBase + line);
        if (txn->type == mem::TxnType::WriteReq)
            txn->data.assign(mem::cachelineBytes, 0);
        txn->onComplete = [&](mem::MemTxn &) { one(); };
        dp.issue(txn);
    };
    for (int i = 0; i < kConcurrency; ++i)
        one();
    eq.run();
    return sim::toUs(eq.now()) / kAccesses * kConcurrency;
}

} // namespace

int
main()
{
    std::vector<Pattern> patterns;
    patterns.push_back(Pattern{
        "uniform", [](sim::Rng &rng, std::uint64_t span) {
            return mem::alignDown(rng.below(span),
                                  mem::cachelineBytes);
        }});
    patterns.push_back(Pattern{
        "zipf-hot", [](sim::Rng &rng, std::uint64_t span) {
            // 90% of accesses to the hottest 10% of the set.
            std::uint64_t hot = span / 10;
            std::uint64_t addr = rng.chance(0.9)
                                     ? rng.below(hot)
                                     : hot + rng.below(span - hot);
            return mem::alignDown(addr, mem::cachelineBytes);
        }});

    std::printf("=== Baseline: swap-based remote memory vs "
                "ThymesisFlow ld/st ===\n");
    std::printf("local memory for swap cache: %llu MiB; values are "
                "mean us per access (closed loop, %d deep)\n",
                (unsigned long long)(kLocalBytes >> 20),
                kConcurrency);
    std::printf("%-10s %-12s %14s %14s %10s\n", "pattern",
                "ws/local", "swap(us)", "tflow(us)", "winner");
    for (const auto &pattern : patterns) {
        for (double ratio : {0.5, 0.9, 1.1, 1.5, 3.0}) {
            double swap_us = runSwap(ratio, pattern);
            double tflow_us = runTflow(ratio, pattern);
            std::printf("%-10s %-12.1f %14.3f %14.3f %10s\n",
                        pattern.name, ratio, swap_us, tflow_us,
                        swap_us < tflow_us ? "swap" : "tflow");
        }
    }
    std::printf("\nexpected shape: swap wins while the working set "
                "fits locally, then thrashes; ThymesisFlow stays "
                "flat (paper Section III motivation)\n");
    return 0;
}
