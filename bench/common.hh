/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 */

#ifndef TF_BENCH_COMMON_HH
#define TF_BENCH_COMMON_HH

#include <cstdio>
#include <memory>

#include "system/testbed.hh"

namespace tf::bench {

/** The five experimental configurations of Fig. 4, in paper order. */
inline const std::vector<sys::Setup> allSetups = {
    sys::Setup::Local,
    sys::Setup::SingleDisaggregated,
    sys::Setup::BondingDisaggregated,
    sys::Setup::Interleaved,
    sys::Setup::ScaleOut,
};

/** The three disaggregated configurations plotted in Fig. 5. */
inline const std::vector<sys::Setup> streamSetups = {
    sys::Setup::SingleDisaggregated,
    sys::Setup::BondingDisaggregated,
    sys::Setup::Interleaved,
};

struct Bed
{
    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<sys::Testbed> testbed;
};

/** Fresh testbed per data point so runs are independent. */
inline Bed
makeBed(sys::Setup setup,
        std::uint64_t donated = 512ULL * 1024 * 1024,
        std::uint64_t cacheBytes = 64ULL * 1024 * 1024)
{
    Bed bed;
    bed.eq = std::make_unique<sim::EventQueue>();
    sys::TestbedParams tp;
    tp.setup = setup;
    tp.donatedBytes = donated;
    tp.node.cache = mem::CacheParams{cacheBytes, 8, 128};
    bed.testbed = std::make_unique<sys::Testbed>(*bed.eq, tp);
    return bed;
}

} // namespace tf::bench

#endif // TF_BENCH_COMMON_HH
