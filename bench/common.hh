/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * The setup lists, Bed and makeBed() moved into the unified harness
 * (harness.hh); this header remains as a shim for the benches that
 * have not been converted into named scenarios.
 */

#ifndef TF_BENCH_COMMON_HH
#define TF_BENCH_COMMON_HH

#include "harness.hh"

#endif // TF_BENCH_COMMON_HH
