/**
 * @file
 * Fig. 1 reproduction: data-centre utilisation, conventional
 * ("fixed") vs disaggregated model, driven by a synthetic
 * ClusterData-like trace.
 *
 * Paper values (Section II):
 *   fragmentation index: fixed CPU 16%, MEM 29.5%;
 *                        disaggregated CPU 3.86%, MEM 9.2%.
 *   resources off:       fixed ~1%; disaggregated CPU 8%, MEM 27%.
 */

#include <cstdio>

#include "dc/simulation.hh"

using namespace tf;

int
main()
{
    // The paper replays the trace against 12555 servers; we run a
    // 1:10-scale replica (1255 servers / 1255+1255 modules) at the
    // same offered utilisation -- the fragmentation and resources-off
    // metrics are per-unit averages and scale-invariant.
    constexpr std::size_t kModules = 1255;

    dc::TraceParams tp;
    tp.jobs = 100000;
    tp.meanInterarrival = sim::milliseconds(2.2);
    tp.durationMu = std::log(static_cast<double>(sim::seconds(25)));
    tp.durationSigma = 0.6;
    tp.cpuMu = std::log(0.05);
    tp.cpuSigma = 1.0;
    dc::TraceGenerator gen(tp, /*seed=*/2020);
    auto trace = gen.generate();

    dc::DataCentreSimulation sim(0.25);

    // Conventional servers behave like the trace's own machines:
    // production schedulers spread, so nearly every machine is on.
    dc::FixedModel fixed(kModules,
                         dc::FixedModel::Placement::LeastLoaded);
    auto fixed_res = sim.run(fixed, trace);

    dc::DisaggModel disagg(kModules, kModules, 16);
    auto disagg_res = sim.run(disagg, trace);

    std::printf("=== Fig. 1: data-centre utilisation, %zu jobs over "
                "%zu servers/modules (1:10 scale) ===\n",
                trace.size(), kModules);
    std::printf("%-28s %10s %10s\n", "metric", "fixed", "disagg");
    std::printf("%-28s %9.2f%% %9.2f%%\n", "fragmentation index CPU",
                fixed_res.average.cpuFragmentation * 100,
                disagg_res.average.cpuFragmentation * 100);
    std::printf("%-28s %9.2f%% %9.2f%%\n", "fragmentation index MEM",
                fixed_res.average.memFragmentation * 100,
                disagg_res.average.memFragmentation * 100);
    std::printf("%-28s %9.2f%% %9.2f%%\n", "resources off CPU",
                fixed_res.average.cpuOff * 100,
                disagg_res.average.cpuOff * 100);
    std::printf("%-28s %9.2f%% %9.2f%%\n", "resources off MEM",
                fixed_res.average.memOff * 100,
                disagg_res.average.memOff * 100);
    std::printf("placed: fixed %llu (rejected %llu), disagg %llu "
                "(rejected %llu)\n",
                (unsigned long long)fixed_res.placed,
                (unsigned long long)fixed.rejected(),
                (unsigned long long)disagg_res.placed,
                (unsigned long long)disagg.rejected());
    std::printf("paper:  frag CPU 16%%/3.86%%, frag MEM 29.5%%/9.2%%; "
                "off: ~1%%/1%% vs 8%%/27%%\n");
    return 0;
}
