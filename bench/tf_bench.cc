/**
 * @file
 * tf_bench: run named scenarios and emit BENCH_<name>.json each.
 * See harness.hh for the scenario registry and document schema.
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::harnessMain(argc, argv);
}
