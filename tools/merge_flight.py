#!/usr/bin/env python3
"""Merge ThymesisFlow flight-recorder / trace dumps into one session.

Every process that dies under panic()/TF_ASSERT dumps its trace rings
to tf_flight_<pid>.json, and tf_bench --trace writes one trace-event
file per scenario. Each file is self-contained trace-event JSON with
its own 1-based pid namespace, so loading several of them into
Perfetto at once is impossible without renumbering.

This tool merges any number of dumps into a single Perfetto-loadable
session:

    tools/merge_flight.py tf_flight_*.json -o merged.json

 - pids are renumbered per input file (file order = argument order),
   so node timelines never collide;
 - process names are prefixed with the source file's stem so the
   origin of every timeline stays visible;
 - span events keep their timestamps and local ids untouched (id2
   scoping is per-process, which the renumbering preserves);
 - every input's otherData.reason is kept, keyed by file.

Only the standard library is used; output is deterministic for a
given argument order (events are sorted by timestamp with a stable
tie-break on input order).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):  # bare event-array form
        return {"traceEvents": doc}
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a trace-event file")
    return doc


def merge(paths):
    out_events = []
    span_events = []
    reasons = {}
    next_base = 0
    for path in paths:
        doc = load(path)
        stem = os.path.splitext(os.path.basename(path))[0]
        reason = doc.get("otherData", {}).get("reason")
        if reason is not None:
            reasons[stem] = reason

        events = doc.get("traceEvents", [])
        max_pid = 0
        for ev in events:
            pid = ev.get("pid")
            if isinstance(pid, int):
                max_pid = max(max_pid, pid)

        for ev in events:
            ev = dict(ev)
            if isinstance(ev.get("pid"), int):
                ev["pid"] = ev["pid"] + next_base
            if (ev.get("ph") == "M"
                    and ev.get("name") == "process_name"):
                args = dict(ev.get("args", {}))
                args["name"] = f"{stem}:{args.get('name', '?')}"
                ev["args"] = args
                out_events.append(ev)
            elif ev.get("ph") == "M":
                out_events.append(ev)
            else:
                span_events.append(ev)
        next_base += max_pid

    # Metadata first, then spans in global timestamp order (stable:
    # input order breaks ties, matching each file's own ordering).
    span_events.sort(key=lambda ev: float(ev.get("ts", 0.0)))
    out = {
        "traceEvents": out_events + span_events,
        "displayTimeUnit": "ns",
    }
    if reasons:
        out["otherData"] = {"reasons": reasons}
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="merge tf_flight_<pid>.json / TRACE dumps into "
                    "one Perfetto session")
    ap.add_argument("inputs", nargs="+",
                    help="trace-event JSON files to merge")
    ap.add_argument("-o", "--output", default="merged_flight.json",
                    help="merged output file "
                         "(default: merged_flight.json)")
    args = ap.parse_args(argv)

    try:
        merged = merge(args.inputs)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    with open(args.output, "w") as f:
        json.dump(merged, f, separators=(",", ":"))
        f.write("\n")
    spans = sum(1 for ev in merged["traceEvents"]
                if ev.get("ph") != "M")
    print(f"{args.output}: {len(args.inputs)} file(s), "
          f"{spans} span events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
