#!/usr/bin/env python3
"""Render the `timeline` section of a tf-bench-v2 BENCH JSON.

tf_bench --timeline-window (and any --topo run whose config declares
monitors) emits per-window time series — counter deltas, gauges,
quantile sketches — plus fault windows and SLO outcomes. This tool
turns that section into something a human (or a CI artifact viewer)
can read at a glance:

    tools/plot_timeline.py BENCH_noisy_neighbor.json
    tools/plot_timeline.py BENCH_fault_soak.json --series 'p0.*'
    tools/plot_timeline.py BENCH_noisy_neighbor.json --svg out.svg

 - default: one Unicode sparkline per series on stdout, faults marked
   with '!' on an overlay row, then the SLO verdict table;
 - --svg FILE: a self-contained SVG with one mini-chart per series,
   fault windows shaded, no external assets;
 - --list: series names only.

Only the standard library is used; output is deterministic for a
given input (series render in sorted-name order, the same order the
JSON stores them in).
"""

import argparse
import fnmatch
import json
import math
import sys

BLOCKS = "▁▂▃▄▅▆▇█"


def load_timeline(path):
    with open(path) as f:
        doc = json.load(f)
    tl = doc.get("timeline")
    if tl is None:
        sys.exit(f"{path}: no `timeline` section (schema "
                 f"{doc.get('schema', '?')}; run tf_bench with "
                 f"--timeline-window or a monitors-declaring --topo)")
    return doc, tl


def finite(values):
    return [v for v in values if v is not None and not (
        isinstance(v, float) and math.isnan(v))]


def sparkline(values, lo, hi):
    out = []
    span = hi - lo
    for v in values:
        if v is None or (isinstance(v, float) and math.isnan(v)):
            out.append("·")
        elif span <= 0:
            out.append(BLOCKS[0] if v <= lo else BLOCKS[-1])
        else:
            idx = int((v - lo) / span * (len(BLOCKS) - 1) + 0.5)
            out.append(BLOCKS[max(0, min(len(BLOCKS) - 1, idx))])
    return "".join(out)


def fault_overlay(tl, windows):
    """One char per window: '!' where any fault window overlaps."""
    window_ns = tl["windowNs"]
    marks = [" "] * windows
    for f in tl.get("faults", []):
        first = int(f["beginNs"] // window_ns)
        last = int(f["endNs"] // window_ns)
        for w in range(max(0, first), min(windows - 1, last) + 1):
            marks[w] = "!"
    return "".join(marks)


def select_series(tl, patterns):
    names = sorted(tl["series"])
    if patterns:
        names = [n for n in names
                 if any(fnmatch.fnmatch(n, p) for p in patterns)]
    return names


def render_ascii(doc, tl, names, out):
    window_us = tl["windowNs"] / 1000.0
    windows = tl["windows"]
    print(f"{doc.get('scenario', '?')}: {windows} windows x "
          f"{window_us:g} us", file=out)

    width = max((len(n) for n in names), default=0)
    overlay = fault_overlay(tl, windows)
    if overlay.strip():
        print(f"{'faults'.rjust(width)}  {overlay}", file=out)
    for name in names:
        s = tl["series"][name]
        vals = s["values"]
        fin = finite(vals)
        if not fin:
            print(f"{name.rjust(width)}  {'·' * len(vals)}  (no data)",
                  file=out)
            continue
        lo, hi = min(fin), max(fin)
        unit = s.get("unit", "")
        print(f"{name.rjust(width)}  {sparkline(vals, lo, hi)}  "
              f"[{lo:g}, {hi:g}] {unit}", file=out)

    slo = tl.get("slo", [])
    if slo:
        print(file=out)
        print("SLO verdicts:", file=out)
        for r in slo:
            first = r.get("firstViolationNs")
            when = (f" first at {first / 1000.0:g} us"
                    if first is not None else "")
            verdict = ("OK" if r["violations"] == 0
                       else f"{r['violations']} violation(s)")
            worst = r.get("worstValue")
            worst = "n/a" if worst is None else f"{worst:g}"
            print(f"  {r['name']}: {verdict} "
                  f"({r['metric']}, worst {worst}, "
                  f"{r['evaluated']} windows evaluated){when}",
                  file=out)


SVG_ROW = 48      # per-series chart height
SVG_GAP = 14
SVG_LABEL = 260   # left gutter for series names
SVG_PLOT = 720


def svg_escape(s):
    return (s.replace("&", "&amp;").replace("<", "&lt;")
             .replace(">", "&gt;"))


def render_svg(doc, tl, names, path):
    windows = max(1, tl["windows"])
    window_ns = tl["windowNs"]
    rows = []
    height = (len(names) + 1) * (SVG_ROW + SVG_GAP)
    width = SVG_LABEL + SVG_PLOT + 20
    xstep = SVG_PLOT / windows

    def x(w):
        return SVG_LABEL + w * xstep

    rows.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">')
    title = (f"{doc.get('scenario', '?')} — {tl['windows']} windows x "
             f"{window_ns / 1000.0:g} us")
    rows.append(f'<text x="10" y="16">{svg_escape(title)}</text>')

    for i, name in enumerate(names):
        top = (i + 1) * (SVG_ROW + SVG_GAP)
        s = tl["series"][name]
        vals = s["values"]
        fin = finite(vals)
        lo, hi = (min(fin), max(fin)) if fin else (0.0, 0.0)
        span = (hi - lo) or 1.0

        # Fault windows shade every chart identically.
        for f in tl.get("faults", []):
            fx = SVG_LABEL + (f["beginNs"] / window_ns) * xstep
            fw = max(1.0, (f["endNs"] - f["beginNs"]) / window_ns
                     * xstep)
            rows.append(
                f'<rect x="{fx:.1f}" y="{top}" width="{fw:.1f}" '
                f'height="{SVG_ROW}" fill="#d9534f" '
                f'fill-opacity="0.15"/>')

        rows.append(
            f'<rect x="{SVG_LABEL}" y="{top}" width="{SVG_PLOT}" '
            f'height="{SVG_ROW}" fill="none" stroke="#ccc"/>')
        label = svg_escape(name)
        rows.append(f'<text x="10" y="{top + SVG_ROW / 2 + 4}">'
                    f'{label}</text>')

        pts = []
        for w, v in enumerate(vals):
            if v is None or (isinstance(v, float) and math.isnan(v)):
                if pts:
                    rows.append(
                        '<polyline fill="none" stroke="#337ab7" '
                        f'points="{" ".join(pts)}"/>')
                    pts = []
                continue
            py = top + SVG_ROW - (v - lo) / span * (SVG_ROW - 4) - 2
            pts.append(f"{x(w) + xstep / 2:.1f},{py:.1f}")
        if pts:
            rows.append('<polyline fill="none" stroke="#337ab7" '
                        f'points="{" ".join(pts)}"/>')
        unit = s.get("unit", "")
        rows.append(
            f'<text x="{SVG_LABEL + SVG_PLOT + 4}" y="{top + 10}" '
            f'font-size="9">{svg_escape(f"{hi:g} {unit}")}</text>')
        rows.append(
            f'<text x="{SVG_LABEL + SVG_PLOT + 4}" '
            f'y="{top + SVG_ROW}" font-size="9">'
            f'{svg_escape(f"{lo:g}")}</text>')

    rows.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(rows) + "\n")


def main():
    ap = argparse.ArgumentParser(
        description="render the timeline section of a BENCH JSON")
    ap.add_argument("bench", help="BENCH_<scenario>.json (tf-bench-v2)")
    ap.add_argument("--series", action="append", default=[],
                    metavar="GLOB",
                    help="only series matching GLOB (repeatable)")
    ap.add_argument("--svg", metavar="FILE",
                    help="write an SVG chart instead of sparklines")
    ap.add_argument("--list", action="store_true",
                    help="list series names and exit")
    args = ap.parse_args()

    doc, tl = load_timeline(args.bench)
    names = select_series(tl, args.series)
    if args.list:
        for n in names:
            print(n)
        return
    if not names:
        sys.exit("no series match")
    if args.svg:
        render_svg(doc, tl, names, args.svg)
        print(f"{args.svg}: {len(names)} series")
    else:
        render_ascii(doc, tl, names, sys.stdout)


if __name__ == "__main__":
    main()
