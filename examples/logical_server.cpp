/**
 * @file
 * Composing a logical server through the control plane's REST-style
 * interface, the way an administrator (or an orchestration framework
 * like OpenStack/Kubernetes, per the paper's future work) would.
 *
 * Builds two hosts plus a datapath, registers them with the control
 * plane, then drives everything through handleRequest(): allocate a
 * bonded flow, inspect it, run a workload on the new CPU-less NUMA
 * node, and tear the flow down.
 */

#include <cstdio>

#include "ctrl/control_plane.hh"
#include "mem/dram.hh"
#include "os/address_space.hh"
#include "system/memory_path.hh"
#include "system/node.hh"

using namespace tf;

int
main()
{
    sim::EventQueue eq;
    sim::Rng rng(99);

    sys::NodeParams node_params;
    sys::Node hostA("hostA", eq, node_params);
    sys::Node hostB("hostB", eq, node_params);

    // Point-to-point ThymesisFlow datapath, hostA compute side.
    flow::Datapath dp("tflow", eq, flow::FlowParams{},
                      ocapi::M1Window{0x2000000000ULL, 1ULL << 30},
                      hostB.pasids(), hostB.dram(), rng,
                      node_params.sectionBytes);
    hostA.attachDatapath(dp);

    ctrl::ControlPlane cp(node_params.agentToken);
    cp.addUser("alice-admin", ctrl::Role::Admin);
    cp.addUser("bob-observer", ctrl::Role::Observer);
    cp.registerHost("hostA", hostA.agent(), hostA.mm());
    cp.registerHost("hostB", hostB.agent(), hostB.mm());
    cp.registerDatapath("hostA", "hostB", dp);

    auto topo = cp.handleRequest("bob-observer", "GET", "/topology");
    std::printf("topology: %s\n", topo.body.c_str());

    // Compose: steal 128 MiB from hostB, bonded over both channels,
    // onto hostA's CPU-less NUMA node.
    std::string body = "compute=hostA donor=hostB bytes=134217728 "
                       "numa=" +
                       std::to_string(hostA.tflowNode()) +
                       " channels=2";
    auto created = cp.handleRequest("alice-admin", "POST", "/flows",
                                    body);
    std::printf("POST /flows -> %d %s\n", created.status,
                created.body.c_str());

    auto flows = cp.handleRequest("bob-observer", "GET", "/flows");
    std::printf("GET /flows ->\n%s", flows.body.c_str());

    // A rogue token cannot mutate the system.
    auto rogue = cp.handleRequest("mallory", "DELETE", "/flows/1");
    std::printf("rogue DELETE -> %d %s\n", rogue.status,
                rogue.body.c_str());

    // Use the composed memory: bind to the new NUMA node and touch it.
    os::AddressSpace space(hostA.mm(), hostA.localNode(),
                           os::AllocPolicy::bind({hostA.tflowNode()}));
    sys::MemoryPath path(hostA);
    mem::Addr va = space.mmap(16 * 1024 * 1024);
    std::vector<mem::Addr> lines;
    for (int i = 0; i < 4096; ++i)
        lines.push_back(va + static_cast<mem::Addr>(i) * 128);
    bool done = false;
    path.burst(space, lines, true, 16, [&]() { done = true; });
    eq.run();
    std::printf("touched 4096 remote lines: %s (mean RTT %.0f ns)\n",
                done ? "ok" : "FAILED",
                dp.compute().rttNs().mean());

    // Tear down: free the pages first, then delete the flow.
    space.munmap(va, 16 * 1024 * 1024);
    auto removed =
        cp.handleRequest("alice-admin", "DELETE", "/flows/1");
    std::printf("DELETE /flows/1 -> %d %s\n", removed.status,
                removed.body.c_str());
    std::printf("remote node pages after teardown: %llu\n",
                (unsigned long long)hostA.mm().totalPages(
                    hostA.tflowNode()));
    return 0;
}
