/**
 * @file
 * Data-centre what-if exploration: sweep offered load and compare
 * the fixed vs disaggregated infrastructure models (the Fig. 1
 * machinery) at configurable scale.
 */

#include <cstdio>

#include "dc/simulation.hh"

using namespace tf;

int
main(int argc, char **argv)
{
    std::size_t modules = 600;
    std::uint64_t jobs = 40000;
    if (argc > 1)
        modules = static_cast<std::size_t>(std::stoul(argv[1]));
    if (argc > 2)
        jobs = std::stoull(argv[2]);

    std::printf("sweep of offered load, %zu modules, %llu jobs\n",
                modules, (unsigned long long)jobs);
    std::printf("%-8s %12s %12s %12s %12s %10s\n", "load",
                "fixFragCPU", "fixFragMEM", "disFragCPU",
                "disFragMEM", "disOffMEM");

    for (double load : {0.5, 0.7, 0.9}) {
        dc::TraceParams tp;
        tp.jobs = jobs;
        tp.durationMu =
            std::log(static_cast<double>(sim::seconds(25)));
        tp.durationSigma = 0.6;
        tp.cpuMu = std::log(0.05);
        // Offered cpu ~= duration/interarrival * meanCpu; solve the
        // interarrival for the requested utilisation.
        double mean_dur = 25e12 * std::exp(0.18) * 1.4;
        double mean_cpu = 0.082;
        tp.meanInterarrival = static_cast<sim::Tick>(
            mean_dur * mean_cpu /
            (load * static_cast<double>(modules)));
        dc::TraceGenerator gen(tp, 11);
        auto trace = gen.generate();

        dc::DataCentreSimulation sim(0.25);
        dc::FixedModel fixed(
            modules, dc::FixedModel::Placement::LeastLoaded);
        auto f = sim.run(fixed, trace);
        dc::DisaggModel disagg(modules, modules, 16);
        auto d = sim.run(disagg, trace);

        std::printf("%-8.2f %11.2f%% %11.2f%% %11.2f%% %11.2f%% "
                    "%9.2f%%\n",
                    load, f.average.cpuFragmentation * 100,
                    f.average.memFragmentation * 100,
                    d.average.cpuFragmentation * 100,
                    d.average.memFragmentation * 100,
                    d.average.memOff * 100);
    }
    return 0;
}
