/**
 * Declarative topology walkthrough: load a JSON topology file, build
 * it onto the parallel engine, run every traffic stanza, and print
 * the per-stanza latency picture plus the fabric's hop counters.
 *
 *   ./topo_fabric [configs/ring.json] [jobs]
 *
 * The same file drives `tf_bench --topo FILE`; this example is the
 * minimal programmatic consumer.
 */

#include <cstdio>
#include <cstdlib>

#include "topo/builder.hh"

int
main(int argc, char **argv)
{
    using namespace tf;

    std::string file =
        argc > 1 ? argv[1] : std::string("configs/ring.json");
    unsigned jobs =
        argc > 2
            ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0))
            : 1;

    try {
        topo::Spec spec = topo::loadSpecFile(file);
        std::printf("topology \"%s\": %zu nodes, %zu switches, "
                    "%zu links, %zu traffic stanzas\n",
                    spec.name.c_str(), spec.nodes.size(),
                    spec.switches.size(), spec.links.size(),
                    spec.traffic.size());

        topo::BuildOptions opt;
        opt.smoke = true; // example-sized run
        opt.jobs = jobs;
        topo::Instance inst(spec, opt);
        std::printf("built %zu logical processes (jobs %u)\n",
                    inst.lpCount(), jobs);

        inst.run();

        for (std::size_t i = 0; i < inst.trafficCount(); ++i) {
            const auto &t = inst.traffic(i);
            std::printf(
                "  %-18s %6llu/%llu ops  mean %8.3f us  "
                "p99 %8.3f us\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.completed.value()),
                static_cast<unsigned long long>(t.target),
                t.latUs.mean(), t.latUs.quantile(0.99));
        }
        std::printf("fabric: %llu relayed msgs, worst egress queue "
                    "%.0f ns\n",
                    static_cast<unsigned long long>(
                        inst.fabric().relayedMessages()),
                    inst.fabric().maxQueueDelayNs());
        if (!spec.faults.empty())
            std::printf("faults fired: %llu\n",
                        static_cast<unsigned long long>(
                            inst.faultsFired()));
    } catch (const topo::SpecError &e) {
        std::fprintf(stderr, "topo_fabric: %s\n", e.what());
        return 2;
    }
    return 0;
}
