/**
 * @file
 * Quickstart: compose disaggregated memory between two simulated
 * AC922 nodes and measure it with a STREAM triad.
 *
 * Demonstrates the public API end to end:
 *   1. build a Testbed in the single-disaggregated configuration
 *      (this steals memory on server B, programs the ThymesisFlow
 *      endpoints and hotplugs the sections into a CPU-less NUMA node
 *      on server A);
 *   2. allocate application memory under the kernel's page policy;
 *   3. run a workload and read the statistics back.
 *
 * Run with `--trace out.json` to record every transaction's causal
 * spans and load the result in Perfetto (ui.perfetto.dev).
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "apps/stream.hh"
#include "sim/trace/export.hh"
#include "system/testbed.hh"

using namespace tf;

int
main(int argc, char **argv)
{
    const char *traceFile = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            traceFile = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--trace FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    sim::EventQueue eq;
    if (traceFile != nullptr)
        eq.trace().setFull(true);

    sys::TestbedParams params;
    params.setup = sys::Setup::SingleDisaggregated;
    params.donatedBytes = 256ULL * 1024 * 1024;
    params.node.cache = mem::CacheParams{4 * 1024 * 1024, 8, 128};
    sys::Testbed testbed(eq, params);

    std::printf("composed testbed: %s\n",
                sys::setupName(testbed.setup()));
    std::printf("remote NUMA node on serverA: node %d (%llu pages "
                "online)\n",
                testbed.serverA().tflowNode(),
                (unsigned long long)testbed.serverA().mm().totalPages(
                    testbed.serverA().tflowNode()));

    apps::StreamParams sp;
    sp.elements = 1024 * 1024; // 8 MiB per array
    sp.threads = 8;
    sp.iterations = 1;
    apps::StreamBenchmark stream(testbed, sp);
    auto result = stream.run(apps::StreamKernel::Triad);

    std::printf("STREAM triad over disaggregated memory: %.2f GiB/s "
                "(theoretical channel max 12.5 GiB/s)\n",
                result.bestGiBs);

    auto &compute = testbed.datapath()->compute();
    std::printf("transactions completed: %llu, mean round trip "
                "%.0f ns\n",
                (unsigned long long)compute.completed(),
                compute.rttNs().mean());

    if (traceFile != nullptr) {
        sim::trace::TraceCollector collector;
        collector.addBuffer(eq.trace(), "quickstart");
        std::ofstream out(traceFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", traceFile);
            return 1;
        }
        collector.writeJson(out);
        std::printf("span trace written to %s (open in Perfetto)\n",
                    traceFile);
    }
    return 0;
}
