/**
 * @file
 * Quickstart: compose disaggregated memory between two simulated
 * AC922 nodes and measure it with a STREAM triad.
 *
 * Demonstrates the public API end to end:
 *   1. build a Testbed in the single-disaggregated configuration
 *      (this steals memory on server B, programs the ThymesisFlow
 *      endpoints and hotplugs the sections into a CPU-less NUMA node
 *      on server A);
 *   2. allocate application memory under the kernel's page policy;
 *   3. run a workload and read the statistics back.
 */

#include <cstdio>

#include "apps/stream.hh"
#include "system/testbed.hh"

using namespace tf;

int
main()
{
    sim::EventQueue eq;

    sys::TestbedParams params;
    params.setup = sys::Setup::SingleDisaggregated;
    params.donatedBytes = 256ULL * 1024 * 1024;
    params.node.cache = mem::CacheParams{4 * 1024 * 1024, 8, 128};
    sys::Testbed testbed(eq, params);

    std::printf("composed testbed: %s\n",
                sys::setupName(testbed.setup()));
    std::printf("remote NUMA node on serverA: node %d (%llu pages "
                "online)\n",
                testbed.serverA().tflowNode(),
                (unsigned long long)testbed.serverA().mm().totalPages(
                    testbed.serverA().tflowNode()));

    apps::StreamParams sp;
    sp.elements = 1024 * 1024; // 8 MiB per array
    sp.threads = 8;
    sp.iterations = 1;
    apps::StreamBenchmark stream(testbed, sp);
    auto result = stream.run(apps::StreamKernel::Triad);

    std::printf("STREAM triad over disaggregated memory: %.2f GiB/s "
                "(theoretical channel max 12.5 GiB/s)\n",
                result.bestGiBs);

    auto &compute = testbed.datapath()->compute();
    std::printf("transactions completed: %llu, mean round trip "
                "%.0f ns\n",
                (unsigned long long)compute.completed(),
                compute.rttNs().mean());
    return 0;
}
