/**
 * @file
 * End-to-end link-failure walkthrough: a 4-channel bonded
 * disaggregated-memory allocation composed through the control
 * plane loses a channel under load, degrades to ~3/4 bandwidth with
 * no data loss, and -- once every channel is gone -- is torn down
 * cleanly with the borrowed memory surprise-removed.
 *
 * Channel bandwidth is scaled down so the network, not the donor's
 * OpenCAPI link, is the bottleneck; the degradation is then visible
 * in the aggregate read bandwidth.
 */

#include <cstdio>
#include <functional>

#include "ctrl/control_plane.hh"
#include "mem/dram.hh"

using namespace tf;

namespace {

constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 28; // 256 MiB
constexpr std::uint64_t kSection = 1ULL << 24;    // 16 MiB
constexpr std::uint64_t kPage = 64 * 1024;
constexpr int kLines = 2048;

const std::string kAgentToken = "agent-secret";
const std::string kAdmin = "admin";

/** Closed-loop reads; returns achieved bandwidth in GB/s. */
double
measureReadBw(sim::EventQueue &eq, flow::Datapath &dp, mem::Addr base,
              int total, int window)
{
    sim::Tick start = eq.now();
    int issued = 0, done = 0, errors = 0;
    std::function<void()> pump = [&]() {
        while (issued < total && issued - done < window) {
            auto rd = mem::makeTxn(
                mem::TxnType::ReadReq,
                base + static_cast<mem::Addr>(issued % kLines) * 128);
            rd->onComplete = [&](mem::MemTxn &t) {
                ++done;
                if (t.error)
                    ++errors;
                pump();
            };
            ++issued;
            dp.issue(std::move(rd));
        }
    };
    pump();
    eq.run();
    double secs = sim::toNs(eq.now() - start) * 1e-9;
    if (errors > 0)
        std::printf("  (%d of %d reads errored)\n", errors, total);
    return static_cast<double>(done) * 128.0 / secs / 1e9;
}

} // namespace

int
main()
{
    sim::EventQueue eq;
    sim::Rng rng(13);

    // Compute host A: a local node plus the CPU-less tflow node the
    // borrowed memory will be hotplugged into.
    os::NumaTopology topo_a;
    os::NodeId local_a = topo_a.addNode("a.local", true);
    os::NodeId tflow_node = topo_a.addNode("a.tflow0", false);
    topo_a.setDistance(local_a, tflow_node, 80);
    os::MemoryManager mm_a(topo_a, kSection, kPage);
    mm_a.onlineSection(local_a, 0);
    ocapi::PasidRegistry pasids_a;
    agent::Agent agent_a("agentA", mm_a, pasids_a, kAgentToken);

    // Donor host B with memory to steal.
    os::NumaTopology topo_b;
    os::NodeId local_b = topo_b.addNode("b.local", true);
    os::MemoryManager mm_b(topo_b, kSection, kPage);
    for (int i = 0; i < 8; ++i)
        mm_b.onlineSection(local_b,
                           static_cast<mem::Addr>(i) * kSection);
    ocapi::PasidRegistry pasids_b;
    agent::Agent agent_b("agentB", mm_b, pasids_b, kAgentToken);
    mem::BackingStore store_b;
    mem::Dram dram_b("dramB", eq, mem::DramParams{}, &store_b);

    // The 4-channel datapath with fast failure detection.
    flow::FlowParams params;
    params.channels = 4;
    params.channelBps = 3.125e9;
    params.hostLinkBps = 100e9;
    params.maxTags = 512;
    params.maxReplayRounds = 4;
    params.ackTimeout = sim::microseconds(2);
    flow::Datapath dp("tflow", eq, params,
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasids_b, dram_b, rng, kSection);

    ctrl::ControlPlane cp(kAgentToken);
    cp.addUser(kAdmin, ctrl::Role::Admin);
    cp.registerHost("hostA", agent_a, mm_a);
    cp.registerHost("hostB", agent_b, mm_b);
    cp.registerDatapath("hostA", "hostB", dp);

    auto id = cp.allocate(kAdmin, "hostA", "hostB", kSection,
                          tflow_node, /*channelsWanted=*/4, local_b);
    if (!id) {
        std::printf("allocation failed\n");
        return 1;
    }
    const ctrl::AllocationRecord *rec = cp.allocation(*id);
    agent::Attachment att = rec->attachment;
    mem::Addr base =
        kWindowBase +
        static_cast<mem::Addr>(att.sectionIndices.front()) * kSection;
    std::printf("composed %llu MiB over %zu bonded channels\n",
                (unsigned long long)(kSection >> 20),
                rec->channels.size());

    // Seed a pattern through the healthy fabric.
    for (int i = 0; i < kLines; ++i) {
        auto wr = mem::makeTxn(mem::TxnType::WriteReq,
                               base + static_cast<mem::Addr>(i) * 128);
        wr->data.assign(128, static_cast<std::uint8_t>(i * 31 + 7));
        dp.issue(wr);
    }
    eq.run();

    double healthy = measureReadBw(eq, dp, base, 8000, 256);
    std::printf("healthy read bandwidth:   %6.2f GB/s (4 channels)\n",
                healthy);

    // ---- lose one channel under load ----
    dp.failChannel(0);
    measureReadBw(eq, dp, base, 500, 256); // traffic drives detection
    double degraded = measureReadBw(eq, dp, base, 8000, 256);
    std::printf("degraded read bandwidth:  %6.2f GB/s (3 channels, "
                "%.0f%% of healthy)\n",
                degraded, 100.0 * degraded / healthy);

    // Nothing was lost: verify every byte survived the failover.
    int bad = 0, checked = 0;
    for (int i = 0; i < kLines; ++i) {
        auto rd = mem::makeTxn(mem::TxnType::ReadReq,
                               base + static_cast<mem::Addr>(i) * 128);
        auto expect = static_cast<std::uint8_t>(i * 31 + 7);
        rd->onComplete = [&bad, &checked, expect](mem::MemTxn &t) {
            ++checked;
            if (t.error || t.data.size() != 128) {
                ++bad;
                return;
            }
            for (auto byte : t.data)
                if (byte != expect) {
                    ++bad;
                    return;
                }
        };
        dp.issue(rd);
    }
    eq.run();
    std::printf("integrity after failover: %d/%d lines OK\n",
                checked - bad, checked);

    // ---- lose every remaining channel: clean teardown ----
    dp.failChannel(1);
    dp.failChannel(2);
    dp.failChannel(3);
    measureReadBw(eq, dp, base, 500, 256); // drive detection + repair
    std::printf("all channels lost: allocations=%zu, memory %s\n",
                cp.allocationCount(),
                mm_a.isOnline(att.hotplugBases.front())
                    ? "still online (BUG)"
                    : "surprise-removed");

    std::printf("\nfailover report\n");
    std::printf("  linkDownEvents     %llu\n",
                (unsigned long long)dp.linkDownEvents());
    std::printf("  reroutedRequests   %llu\n",
                (unsigned long long)dp.reroutedRequests());
    std::printf("  reroutedResponses  %llu\n",
                (unsigned long long)dp.reroutedResponses());
    std::printf("  degradedTxns       %llu\n",
                (unsigned long long)dp.routing().degradedTxns());
    std::printf("  unroutableDropped  %llu\n",
                (unsigned long long)dp.routing().unroutableDropped());
    std::printf("  cp repairs         %llu\n",
                (unsigned long long)cp.repairs());
    std::printf("  cp degrades        %llu\n",
                (unsigned long long)cp.degrades());
    std::printf("  cp teardowns       %llu\n",
                (unsigned long long)cp.teardowns());
    std::printf("  agent link events  %llu\n",
                (unsigned long long)agent_a.linkEventsObserved());
    return bad == 0 ? 0 : 1;
}
