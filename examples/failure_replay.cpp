/**
 * @file
 * Fault injection on the network channels: demonstrate that the LLC
 * frame-replay protocol keeps disaggregated memory correct under
 * frame loss and corruption, and show what reliability costs.
 *
 * Writes a pattern through a lossy link, reads it back, verifies
 * every byte, and prints the replay statistics.
 */

#include <cstdio>

#include "mem/dram.hh"
#include "tflow/datapath.hh"

using namespace tf;

namespace {
constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 28;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;
} // namespace

int
main()
{
    for (double error_rate : {0.0, 0.01, 0.05}) {
        sim::EventQueue eq;
        sim::Rng rng(7);
        mem::BackingStore donor_store;
        mem::Dram donor_dram("donorDram", eq, mem::DramParams{},
                             &donor_store);
        ocapi::PasidRegistry pasids;

        flow::FlowParams params;
        params.frameErrorRate = error_rate;
        params.ackTimeout = sim::microseconds(10);
        flow::Datapath dp("tflow", eq, params,
                          ocapi::M1Window{kWindowBase, kWindowSize},
                          pasids, donor_dram, rng, kSection);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        dp.stealing().setPasid(pasid);
        dp.attach(0, kDonorBase, 1, {0, 1}); // bonded

        const int lines = 4000;
        int bad = 0;
        int outstanding = 0;

        // Write a distinct pattern to every line.
        for (int i = 0; i < lines; ++i) {
            auto wr = mem::makeTxn(
                mem::TxnType::WriteReq,
                kWindowBase + static_cast<mem::Addr>(i) * 128);
            wr->data.assign(128,
                            static_cast<std::uint8_t>(i * 7 + 13));
            ++outstanding;
            wr->onComplete = [&](mem::MemTxn &t) {
                --outstanding;
                if (t.error)
                    ++bad;
            };
            dp.issue(wr);
        }
        eq.run();

        // Read everything back and verify.
        for (int i = 0; i < lines; ++i) {
            auto rd = mem::makeTxn(
                mem::TxnType::ReadReq,
                kWindowBase + static_cast<mem::Addr>(i) * 128);
            auto expect = static_cast<std::uint8_t>(i * 7 + 13);
            rd->onComplete = [&bad, expect](mem::MemTxn &t) {
                if (t.error || t.data.size() != 128) {
                    ++bad;
                    return;
                }
                for (auto byte : t.data)
                    if (byte != expect) {
                        ++bad;
                        return;
                    }
            };
            dp.issue(rd);
        }
        eq.run();

        std::uint64_t replays = 0, timeouts = 0, gaps = 0,
                      corrupted = 0;
        for (std::size_t ch = 0; ch < dp.channelCount(); ++ch) {
            replays += dp.channel(ch).txA().replayedFrames() +
                       dp.channel(ch).txB().replayedFrames();
            timeouts += dp.channel(ch).txA().timeouts() +
                        dp.channel(ch).txB().timeouts();
            gaps += dp.channel(ch).rxA().gapsDetected() +
                    dp.channel(ch).rxB().gapsDetected();
            corrupted += dp.channel(ch).rxA().corruptedSeen() +
                         dp.channel(ch).rxB().corruptedSeen();
        }
        std::printf("error rate %.2f: %d/%d lines verified, "
                    "%llu replayed frames, %llu gaps, %llu corrupted, "
                    "%llu timeouts, mean RTT %.0f ns\n",
                    error_rate, lines - bad, lines,
                    (unsigned long long)replays,
                    (unsigned long long)gaps,
                    (unsigned long long)corrupted,
                    (unsigned long long)timeouts,
                    dp.compute().rttNs().mean());
        if (bad != 0)
            return 1;
    }
    std::printf("all patterns intact under every error rate\n");
    return 0;
}
